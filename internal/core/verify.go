package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sched"
	"peak/internal/sim"
)

// Golden-output verification (active only under fault injection): every
// compiled non-base version is executed over a short, deterministic
// verification workload and its outputs — return values and final memory —
// are compared against the base "-O3" version's. The paper's flag removals
// are semantics-preserving (every version computes the same results, which
// an empirical sweep over all 38 single-flag removals confirms bit-exactly
// on every benchmark), so any output divergence beyond float tolerance
// means a miscompile, and the flag set is quarantined: removed from the
// search and recorded in TuneResult.Quarantined rather than rated on
// garbage output.
const (
	// verifyInvocations is how many TS invocations the verification
	// workload runs (capped by the dataset size).
	verifyInvocations = 5
	// verifyStepFactor bounds a candidate run at this multiple of the
	// golden run's dynamic instruction count, so a miscompiled runaway
	// loop is killed (sim.ErrStepLimit) instead of hanging the tuner.
	verifyStepFactor = 50
	// verifyRelTol is the relative output tolerance. Flag removals
	// reproduce base outputs bit-exactly here, so the tolerance only has
	// to stay above float noise, far below any real corruption.
	verifyRelTol = 1e-9
)

// goldenRef is the base version's verification reference.
type goldenRef struct {
	rets      []float64            // per-invocation return values
	mem       map[string][]float64 // final array contents
	maxInstrs int64                // largest per-invocation instruction count
}

// verifyRun executes v over the verification workload: fresh memory and
// dataset streams seeded from the root seed only — shared by the golden
// run and every candidate run, so all of them see identical inputs.
func (e *engine) verifyRun(v *sim.Version, maxSteps int64) ([]float64, map[string][]float64, int64, int64, error) {
	return runVerifyWorkload(e.t.Mach, e.prog, e.t.Dataset, e.rootSeed, v, maxSteps)
}

// runVerifyWorkload runs the shared verification workload for one version:
// fresh memory, data and runner streams derived from rootSeed only — so the
// golden run and every candidate run see identical inputs regardless of
// when (or in which process) they execute.
func runVerifyWorkload(mach *machine.Machine, prog *ir.Program, ds *bench.Dataset, rootSeed int64, v *sim.Version, maxSteps int64) (rets []float64, snap map[string][]float64, cycles, maxInstrs int64, err error) {
	mem := sim.NewMemory(prog)
	rng := rand.New(rand.NewSource(sched.DeriveSeed(rootSeed, "verify/data")))
	runner := sim.NewRunner(mach, mem, sched.DeriveSeed(rootSeed, "verify/runner"))
	runner.MaxSteps = maxSteps
	if ds.Setup != nil {
		ds.Setup(mem, rng)
	}
	n := verifyInvocations
	if ds.NumInvocations < n {
		n = ds.NumInvocations
	}
	rets = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		args := ds.Args(i, mem, rng)
		ret, st, rerr := runner.Run(v, args)
		if rerr != nil {
			return nil, nil, cycles, maxInstrs, rerr
		}
		rets = append(rets, ret)
		cycles += st.Cycles
		if st.Instrs > maxInstrs {
			maxInstrs = st.Instrs
		}
	}
	names := mem.Names()
	sort.Strings(names)
	return rets, mem.Snapshot(names), cycles, maxInstrs, nil
}

// goldenLocked returns the verification reference, building it from the
// base "-O3" version on first use (under e.mu). The build's simulated time
// and invocations are returned exactly once, with the first build.
func (e *engine) goldenLocked() (g *goldenRef, cycles, inv int64, err error) {
	if e.golden != nil {
		return e.golden, 0, 0, nil
	}
	vi, err := e.resolveLocked(opt.O3())
	if err != nil {
		return nil, 0, 0, err
	}
	rets, snap, cycles, maxInstrs, err := e.verifyRun(vi.v, 0)
	if err != nil {
		// The exempt base version must run cleanly; failure here is a
		// genuine engine bug, not a quarantinable fault.
		return nil, 0, 0, fmt.Errorf("tune %s: golden reference run failed: %w", e.t.Bench.Name, err)
	}
	e.golden = &goldenRef{rets: rets, mem: snap, maxInstrs: maxInstrs}
	return e.golden, cycles, int64(len(rets)), nil
}

// verifyLocked checks v's outputs against the golden reference and reports
// whether it must be quarantined. The verdict is a pure function of the
// compiled code and the root seed — independent of scheduling, caching,
// and resume — and errors (runtime faults, runaway step limits) count as
// failed verification, not as tune errors.
func (e *engine) verifyLocked(v *sim.Version) (quarantined bool, cycles, inv int64, err error) {
	g, gc, gi, err := e.goldenLocked()
	if err != nil {
		return false, 0, 0, err
	}
	cycles, inv = gc, gi
	maxSteps := g.maxInstrs * verifyStepFactor
	if maxSteps < 1_000_000 {
		maxSteps = 1_000_000
	}
	rets, snap, vc, _, runErr := e.verifyRun(v, maxSteps)
	cycles += vc
	inv += int64(len(g.rets))
	if runErr != nil {
		return true, cycles, inv, nil
	}
	if !floatsClose(rets, g.rets) || !memClose(snap, g.mem) {
		return true, cycles, inv, nil
	}
	return false, cycles, inv, nil
}

// closeEnough reports a ≈ b within verifyRelTol (relative to the larger
// magnitude, with an absolute floor of 1). NaN matches NaN: an
// uncorrupted version reproduces the base's NaNs exactly.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return diff <= verifyRelTol*scale
}

func floatsClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !closeEnough(a[i], b[i]) {
			return false
		}
	}
	return true
}

func memClose(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ad := range a {
		bd, ok := b[name]
		if !ok || !floatsClose(ad, bd) {
			return false
		}
	}
	return true
}
