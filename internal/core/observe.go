package core

import (
	"math"

	"peak/internal/trace"
)

// baseLabel is the Flag label trace events use for the round's base flag
// set (the candidates are labelled by the flag they switch off; the base
// switches off nothing).
const baseLabel = "(base)"

// emit stamps the tune identity on ev and records it. The engine's
// emission sites run only on the round-reduction goroutine, in candidate
// order, which is what keeps the buffer's contents deterministic; they
// additionally guard on e.tb != nil themselves so the disabled path
// never constructs an Event.
func (e *engine) emit(ev trace.Event) {
	if e.tb == nil {
		return
	}
	ev.Tune = e.id
	e.tb.Emit(ev)
}

// finite maps the non-JSON float values (±Inf, NaN) to -1, the trace
// schema's "undefined" marker. Rating.CIHalf is +Inf below two samples.
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

// emitCache records one resolution of the precompile walk: a repeat
// lookup is a "hit", a first resolution a "miss" — or "shared" when its
// generated code fingerprints identically to an earlier resolution of
// this tune, in which case Leader names that first flag set. Fresh
// resolutions carry their one-time costs (injected compile retries,
// backoff, verification time).
func (e *engine) emitCache(round, ordinal int, label string, vi versionInfo, fresh bool) {
	ev := trace.Event{Kind: trace.KindCache, Round: round + 1, Ordinal: ordinal, Flag: label}
	if e.store != nil {
		// Tier is provenance: "disk" when the resolution was answered by a
		// persistent-store preload, "memory" when this process compiled or
		// cached it. Emitted only with a store attached, so trace bytes are
		// unchanged when the store is disabled.
		ev.Tier = "memory"
		if vi.fromDisk {
			ev.Tier = "disk"
		}
	}
	if !fresh {
		ev.Outcome = "hit"
	} else {
		ev.Retries = vi.retries
		ev.RetryCycles = vi.retryCycles
		ev.VerifyCycles = vi.verifyCycles
		if first, ok := e.fpFirst[vi.fp]; ok {
			ev.Outcome = "shared"
			ev.Leader = first
		} else {
			ev.Outcome = "miss"
			e.fpFirst[vi.fp] = label
		}
	}
	e.emit(ev)
}

// emitRate records one accounted rating job, in the reduction's
// candidate order: the rating (method, EVAL, CI half-width), whether it
// converged or ran out of budget, the job's private cycle/invocation
// ledger with its fault-recovery share, and the cumulative tune ledger
// after accounting.
func (e *engine) emitRate(round, ordinal int, label string, r *jobResult) {
	outcome := "budget"
	if r.converged {
		outcome = "converged"
	}
	tier := ""
	if r.memoized {
		tier = "memo"
	}
	e.emit(trace.Event{
		Kind:        trace.KindRate,
		Round:       round + 1,
		Ordinal:     ordinal,
		Flag:        label,
		Method:      r.rating.Method.String(),
		Outcome:     outcome,
		Eval:        finite(r.rating.EVAL),
		CIHalf:      finite(r.rating.CIHalf),
		JobCycles:   r.ctx.cycles,
		RetryCycles: r.ctx.retryCycles,
		Invocations: r.ctx.invocations,
		Retries:     r.ctx.measureRetries,
		Count:       int64(r.jobRetries),
		Cycles:      e.res.TuningCycles,
		Tier:        tier,
	})
}

// emitTuneEnd closes the tune's trace with the final ledger: total
// tuning cycles and invocations, the winning flag set, and the full
// TuneResult counter block (key-sorted by the JSON encoder, so the
// rendering is deterministic).
func (e *engine) emitTuneEnd() {
	r := e.res
	e.emit(trace.Event{
		Kind:        trace.KindTuneEnd,
		Method:      r.MethodUsed.String(),
		Cycles:      r.TuningCycles,
		Invocations: r.Invocations,
		Detail:      r.Best.String(),
		Counts: map[string]int64{
			"cache_hits":         r.CacheHits,
			"cache_lookups":      r.CacheLookups,
			"cache_misses":       r.CacheMisses,
			"compile_retries":    int64(r.CompileRetries),
			"dedup_skips":        int64(r.DedupSkips),
			"escalations":        int64(r.Escalations),
			"job_retries":        int64(r.JobRetries),
			"measure_retries":    int64(r.MeasureRetries),
			"method_switches":    int64(r.MethodSwitches),
			"program_runs":       int64(r.ProgramRuns),
			"quarantined":        int64(len(r.Quarantined)),
			"removed":            int64(len(r.Removed)),
			"rounds":             int64(r.Rounds),
			"shared_code":        int64(r.SharedCode),
			"verify_invocations": r.VerifyInvocations,
			"versions_rated":     int64(r.VersionsRated),
		},
	})
}

// FillMetrics folds the tune's counters into a metrics registry under
// the "core." prefix (one Add per counter, so registries accumulate
// across tunes). No-op when m is nil. The metric names are catalogued in
// OBSERVABILITY.md.
func (r *TuneResult) FillMetrics(m *trace.Metrics) {
	if m == nil {
		return
	}
	m.Add("core.tunes", 1)
	m.Add("core.tuning_cycles", r.TuningCycles)
	m.Add("core.program_runs", int64(r.ProgramRuns))
	m.Add("core.invocations", r.Invocations)
	m.Add("core.versions_rated", int64(r.VersionsRated))
	m.Add("core.rounds", int64(r.Rounds))
	m.Add("core.flags_removed", int64(len(r.Removed)))
	m.Add("core.method_switches", int64(r.MethodSwitches))
	m.Add("core.escalations", int64(r.Escalations))
	m.Add("core.cache_lookups", r.CacheLookups)
	m.Add("core.cache_hits", r.CacheHits)
	m.Add("core.cache_misses", r.CacheMisses)
	m.Add("core.shared_code", int64(r.SharedCode))
	m.Add("core.dedup_skips", int64(r.DedupSkips))
	m.Add("core.quarantined", int64(len(r.Quarantined)))
	m.Add("core.compile_retries", int64(r.CompileRetries))
	m.Add("core.measure_retries", int64(r.MeasureRetries))
	m.Add("core.job_retries", int64(r.JobRetries))
	m.Add("core.verify_invocations", r.VerifyInvocations)
}
