package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"peak/internal/analysis"
	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sim"
)

// Tuner drives the PEAK offline tuning of one benchmark's tuning section on
// one machine (paper §4.2): it compiles experimental versions, rates them
// with the selected rating method while the application runs over the
// tuning dataset, and searches the flag space with Iterative Elimination.
type Tuner struct {
	Bench   *bench.Benchmark
	Mach    *machine.Machine
	Dataset *bench.Dataset
	Cfg     Config
	Profile *profiling.Profile

	// Force pins the rating method (used by the Figure-7 method-comparison
	// experiments); leave nil for the consultant's automatic choice with
	// runtime switching.
	Force *Method
}

// TuneResult reports a finished tuning process.
type TuneResult struct {
	Best opt.FlagSet
	// MethodUsed is the rating method that produced the final decisions
	// (after any runtime switches); MethodSwitches counts switches.
	MethodUsed     Method
	MethodSwitches int
	// TuningCycles is the simulated time of the whole tuning process:
	// every executed TS invocation (including RBR's re-executions,
	// preconditioning and save/restore overheads) plus the non-TS part of
	// every program run consumed. Figure 7(c,d) normalizes this to WHL.
	TuningCycles int64
	// ProgramRuns is the number of application runs consumed.
	ProgramRuns int
	// Invocations is the number of TS invocations executed.
	Invocations int64
	// VersionsRated counts distinct flag combinations rated; Rounds the
	// Iterative Elimination rounds; Removed the flags switched off.
	VersionsRated int
	Rounds        int
	Removed       []opt.Flag
}

// engine is the running state of one tuning process.
type engine struct {
	t       *Tuner
	cfg     *Config
	methods []Method
	mi      int // index into methods
	app     *Applicability

	prog *ir.Program // program with the instrumented TS
	ts   *ir.Func    // instrumented tuning section

	versions map[opt.FlagSet]*sim.Version

	mem    *sim.Memory
	runner *sim.Runner
	clock  *sim.Clock
	rng    *rand.Rand

	runActive bool
	dsIdx     int

	res      *TuneResult
	switched int
}

// Tune runs the complete offline tuning process.
func (t *Tuner) Tune() (*TuneResult, error) {
	e, err := t.newEngine()
	if err != nil {
		return nil, err
	}
	if err := e.iterativeElimination(); err != nil {
		return nil, err
	}
	e.finishRun()
	e.res.MethodUsed = e.methods[e.mi]
	e.res.MethodSwitches = e.switched
	return e.res, nil
}

func (t *Tuner) newEngine() (*engine, error) {
	cfg := t.Cfg
	e := &engine{
		t:        t,
		cfg:      &cfg,
		versions: map[opt.FlagSet]*sim.Version{},
		rng:      rand.New(rand.NewSource(cfg.Seed ^ t.Bench.Seed(1))),
		res:      &TuneResult{},
	}

	e.app = Consult(t.Profile, &cfg)
	if t.Force != nil {
		e.methods = []Method{*t.Force}
	} else {
		e.methods = append([]Method(nil), e.app.Methods...)
	}

	// The tuning build keeps only the counters the component model needs
	// ("the unnecessary instrumentation code for the merged blocks is
	// removed", §2.3); other methods strip all counters.
	instr := analysis.Instrument(t.Bench.TS)
	keep := map[int]bool{}
	if t.Profile.Model != nil {
		keep = t.Profile.Model.KeepCounters
	}
	e.ts = analysis.StripCounters(instr, keep)
	e.prog = t.Bench.Prog.Clone()
	e.prog.AddFunc(e.ts)

	e.mem = sim.NewMemory(e.prog)
	e.runner = sim.NewRunner(t.Mach, e.mem, cfg.Seed^t.Bench.Seed(7))
	e.clock = sim.NewClock(t.Mach, cfg.Seed^t.Bench.Seed(13))
	return e, nil
}

func (e *engine) version(fs opt.FlagSet) (*sim.Version, error) {
	if v, ok := e.versions[fs]; ok {
		return v, nil
	}
	v, err := opt.Compile(e.prog, e.ts, fs, e.t.Mach)
	if err != nil {
		return nil, fmt.Errorf("tune %s: compile %s: %w", e.t.Bench.Name, fs, err)
	}
	e.versions[fs] = v
	return v, nil
}

func (e *engine) newRater(m Method) rater {
	switch m {
	case MethodAVG:
		return &avgRater{cfg: e.cfg}
	case MethodCBR:
		return &cbrRater{cfg: e.cfg, target: e.t.Profile.DominantContext}
	case MethodMBR:
		return newMBRRater(e.t.Profile.Model, e.t.Profile.CAvg, nil, e.cfg)
	case MethodRBR:
		r := &rbrRater{
			cfg:           e.cfg,
			modifiedInput: e.t.Profile.Effects.ModifiedInput(),
			saveElems:     int64(e.t.Profile.ModifiedInputElems),
			improved:      !e.cfg.BasicRBR,
			inspector:     e.cfg.RBRInspector && !e.cfg.BasicRBR,
		}
		if e.cfg.BasicRBR {
			// The basic method saves the whole Input(TS), not just the
			// modified part (Figure 3 step 1 vs Eq. 6).
			r.modifiedInput = nil
			r.saveElems = 0
			for arr := range e.t.Profile.Effects.Reads {
				r.modifiedInput = append(r.modifiedInput, arr)
				if a := e.mem.Get(arr); a != nil {
					r.saveElems += int64(len(a.Data))
				}
			}
			sort.Strings(r.modifiedInput)
		}
		return r
	}
	panic("core: newRater called for " + m.String())
}

// startRun begins a fresh application run over the tuning dataset.
func (e *engine) startRun() {
	ds := e.t.Dataset
	e.runner.ResetMicroarch()
	if ds.Setup != nil {
		ds.Setup(e.mem, e.rng)
	}
	e.dsIdx = 0
	e.runActive = true
}

// finishRun accounts the non-TS portion of a consumed application run.
func (e *engine) finishRun() {
	if e.runActive {
		e.res.TuningCycles += e.t.Bench.NonTSCycles
		e.res.ProgramRuns++
		e.runActive = false
	}
}

// nextInvocation yields the arguments (and CBR key) of the next TS
// invocation, starting a new program run when the dataset is exhausted.
func (e *engine) nextInvocation(needKey bool) (args []float64, key string) {
	if !e.runActive || e.dsIdx >= e.t.Dataset.NumInvocations {
		e.finishRun()
		e.startRun()
	}
	args = e.t.Dataset.Args(e.dsIdx, e.mem, e.rng)
	e.dsIdx++
	if needKey {
		key = e.t.Profile.CBRKeyFor(e.t.Bench, args, e.mem)
	}
	return args, key
}

// errMethodExhausted reports that no applicable rating method converged.
var errMethodExhausted = fmt.Errorf("core: all rating methods failed to converge")

// rate rates the experimental flag set against the base flag set using the
// current method, switching to the next applicable method if convergence
// is not reached within the invocation budget (§3).
func (e *engine) rate(exp, base opt.FlagSet) (Rating, error) {
	if e.methods[e.mi] == MethodWHL {
		return e.rateWHL(exp)
	}
	for {
		m := e.methods[e.mi]
		r, ok, err := e.rateWith(m, exp, base)
		if err != nil {
			return Rating{}, err
		}
		if ok {
			return r, nil
		}
		// Not converging: switch to the next applicable method.
		if e.mi+1 >= len(e.methods) {
			// Last resort: accept the unconverged rating.
			return r, nil
		}
		e.mi++
		e.switched++
	}
}

func (e *engine) rateWith(m Method, exp, base opt.FlagSet) (Rating, bool, error) {
	expV, err := e.version(exp)
	if err != nil {
		return Rating{}, false, err
	}
	baseV, err := e.version(base)
	if err != nil {
		return Rating{}, false, err
	}
	r := e.newRater(m)
	needKey := m == MethodCBR
	checkEvery := e.cfg.Window / 8
	if checkEvery < 1 {
		checkEvery = 1
	}
	for r.used() < e.cfg.MaxInvPerVersion {
		args, key := e.nextInvocation(needKey)
		ic := &invocation{
			args: args, key: key,
			runner: e.runner, clock: e.clock, mem: e.mem,
			best: baseV, exp: expV,
		}
		cycles, err := r.observe(ic)
		e.res.TuningCycles += cycles
		e.res.Invocations++
		if err != nil {
			return Rating{}, false, fmt.Errorf("tune %s [%s]: %w", e.t.Bench.Name, m, err)
		}
		if r.used()%checkEvery == 0 && r.converged(e.cfg) {
			e.res.VersionsRated++
			return r.rating(), true, nil
		}
	}
	e.res.VersionsRated++
	return r.rating(), false, nil
}

// rateWHL times one whole application run per version — the
// state-of-the-art baseline ("executing the whole program to rate one
// version", §1). Any in-progress run is completed for the previous rater
// first; WHL then consumes dedicated runs.
func (e *engine) rateWHL(exp opt.FlagSet) (Rating, error) {
	expV, err := e.version(exp)
	if err != nil {
		return Rating{}, err
	}
	e.finishRun()
	ds := e.t.Dataset
	e.runner.ResetMicroarch()
	if ds.Setup != nil {
		ds.Setup(e.mem, e.rng)
	}
	var total int64
	var measured float64
	for i := 0; i < ds.NumInvocations; i++ {
		args := ds.Args(i, e.mem, e.rng)
		_, st, err := e.runner.Run(expV, args)
		if err != nil {
			return Rating{}, fmt.Errorf("tune %s [WHL]: %w", e.t.Bench.Name, err)
		}
		total += st.Cycles
		measured += e.clock.Measure(st.Cycles)
		e.res.Invocations++
	}
	e.res.TuningCycles += total + e.t.Bench.NonTSCycles
	e.res.ProgramRuns++
	e.res.VersionsRated++
	// Per-invocation jitter largely averages out over a whole run, which
	// is what makes WHL "the best that can be achieved by static tuning"
	// (§5.2) — just extremely slow.
	return Rating{Method: MethodWHL, EVAL: measured + float64(e.t.Bench.NonTSCycles),
		Samples: ds.NumInvocations}, nil
}

// iterativeElimination searches the flag space (paper §5.2, algorithm from
// [11]): starting from -O3, each round rates every remaining flag switched
// off and permanently removes the flag whose removal helps most, until no
// removal improves the rating by more than the threshold.
func (e *engine) iterativeElimination() error {
	const maxRounds = 8
	current := opt.O3()
	candidates := opt.AllFlags()

	baseEval, err := e.baseEval(current)
	if err != nil {
		return err
	}

	for round := 0; round < maxRounds; round++ {
		e.res.Rounds = round + 1
		bestIdx := -1
		bestImp := e.cfg.ImprovementThreshold
		for i := 0; i < len(candidates); i++ {
			f := candidates[i]
			miBefore := e.mi
			r, err := e.rate(current.Without(f), current)
			if err != nil {
				return err
			}
			if e.mi != miBefore {
				// The rating method switched mid-round; the base rating's
				// units no longer match. Re-establish the base and re-rate
				// this flag under the new method.
				baseEval, err = e.baseEval(current)
				if err != nil {
					return err
				}
				i--
				continue
			}
			imp := r.ImprovementOver(baseEval)
			if imp > bestImp {
				bestImp, bestIdx = imp, i
			}
		}
		if bestIdx < 0 {
			break
		}
		f := candidates[bestIdx]
		current = current.Without(f)
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		e.res.Removed = append(e.res.Removed, f)
		baseEval, err = e.baseEval(current)
		if err != nil {
			return err
		}
	}
	e.res.Best = current
	return nil
}

// baseEval obtains the absolute rating of the current base version, needed
// to express other versions' ratings as improvements (RBR rates relative
// improvement directly and needs no base measurement).
func (e *engine) baseEval(base opt.FlagSet) (float64, error) {
	m := e.methods[e.mi]
	if m == MethodRBR {
		return math.NaN(), nil
	}
	r, err := e.rate(base, base)
	if err != nil {
		return 0, err
	}
	// A method switch may have happened inside rate; if we are now on
	// RBR, the base eval is unused.
	if e.methods[e.mi] == MethodRBR {
		return math.NaN(), nil
	}
	return r.EVAL, nil
}
