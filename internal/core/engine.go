package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"peak/internal/analysis"
	"peak/internal/bench"
	"peak/internal/fault"
	"peak/internal/ir"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/sim"
	"peak/internal/stats"
	"peak/internal/store"
	"peak/internal/trace"
	"peak/internal/vcache"
)

// Tuner drives the PEAK offline tuning of one benchmark's tuning section on
// one machine (paper §4.2): it compiles experimental versions, rates them
// with the selected rating method while the application runs over the
// tuning dataset, and searches the flag space with Iterative Elimination.
type Tuner struct {
	Bench   *bench.Benchmark
	Mach    *machine.Machine
	Dataset *bench.Dataset
	Cfg     Config
	Profile *profiling.Profile

	// Force pins the rating method (used by the Figure-7 method-comparison
	// experiments); leave nil for the consultant's automatic choice with
	// runtime switching.
	Force *Method

	// Candidates restricts the Iterative Elimination search to a subset of
	// the tunable flags (nil searches all 38). The serve layer maps a
	// request's flag subset here. Callers should canonicalize the order
	// (ascending flag value): candidate order is part of the tune's
	// identity — it fixes reduction order and tie-breaks — so two requests
	// naming the same set in different orders would otherwise be distinct
	// tunes.
	Candidates []opt.Flag

	// Interrupt, when non-nil, is polled on the reduction goroutine before
	// every Iterative Elimination round; once it returns true the tune
	// stops with ErrInterrupted instead of starting the round. The last
	// completed round was already checkpointed (when a Journal is
	// attached), so an interrupted tune resumes byte-identically. The
	// serve layer wires its drain signal here.
	Interrupt func() bool

	// OnRound, when non-nil, is called on the reduction goroutine after
	// each completed Iterative Elimination round (after its checkpoint, if
	// any) with the 1-based round number. It is a liveness signal, not a
	// result channel: the serve layer's watchdog uses it to detect tunes
	// that stop making round progress. The hook must not block and must
	// not touch tuning state.
	OnRound func(round int)

	// Pool shards Iterative Elimination's independent candidate ratings
	// across workers. Nil (or a sched.Serial pool) rates them one after
	// another on the calling goroutine. The result is bit-identical at any
	// worker count: every rating job derives its own random streams from
	// sched.DeriveSeed(rootSeed, jobKey) and the round reduction runs in
	// candidate order (see ARCHITECTURE.md for the determinism contract).
	Pool sched.Pool

	// Cache is an optional shared compile cache: experiment drivers pass
	// one cache to many Tuners so a (program, function, flags, machine)
	// combination compiles once across tunes. Nil gives the tune a private
	// cache (flag sets still compile once per tune, and flag sets that
	// generate identical code share one frozen version). Sharing cannot
	// perturb results: compilation is deterministic, cached versions are
	// frozen before publication, and all per-execution state lives in
	// per-job runners. Cfg.NoCompileCache disables caching entirely.
	Cache *vcache.Cache

	// Store, when set, memoizes finished rating jobs in the persistent
	// warm-start store (internal/store): a job whose complete identity —
	// code fingerprints, machine, dataset, derived seeds, rating config
	// and noise model — matches a record loaded at store-open time
	// restores the recorded outcome instead of simulating, byte-identical
	// by the determinism contract. The store's read set is frozen at open,
	// so memo answers are independent of worker count and scheduling.
	// Ignored when fault injection is enabled: fault draws consume
	// per-process stream state that no key can capture, so faulted
	// ratings are never memoized.
	Store *store.Store

	// Journal, when set, turns on checkpointing: the engine appends its
	// state to the journal after every completed Iterative Elimination
	// round, keyed by CheckpointID, and — if the journal already holds a
	// record for that ID — resumes from it, producing a TuneResult
	// byte-identical to an uninterrupted run. CheckpointID defaults to
	// "bench/machine/method/dataset".
	Journal      *fault.Journal
	CheckpointID string

	// Trace, when set, records the tuning process as structured events
	// (internal/trace): round boundaries, per-flag ratings, cache
	// resolutions, dedup skips, fault recovery, checkpoints. All events
	// are emitted on the round-reduction path in candidate order and keyed
	// by simulated cycles, so the buffer's contents are byte-identical at
	// any worker count and with the cache on or off. Nil disables tracing
	// at the cost of one pointer test per emission site.
	Trace *trace.Buffer
}

// TuneResult reports a finished tuning process.
type TuneResult struct {
	Best opt.FlagSet
	// MethodUsed is the rating method that produced the final decisions
	// (after any runtime switches); MethodSwitches counts switches.
	MethodUsed     Method
	MethodSwitches int
	// TuningCycles is the simulated time of the whole tuning process:
	// every executed TS invocation (including RBR's re-executions,
	// preconditioning and save/restore overheads) plus the non-TS part of
	// every program run consumed. Figure 7(c,d) normalizes this to WHL.
	TuningCycles int64
	// ProgramRuns is the number of application runs consumed.
	ProgramRuns int
	// Invocations is the number of TS invocations executed.
	Invocations int64
	// VersionsRated counts distinct flag combinations rated; Rounds the
	// Iterative Elimination rounds; Removed the flags switched off.
	VersionsRated int
	Rounds        int
	Removed       []opt.Flag
	// Escalations counts candidate ratings whose confidence interval
	// stayed wide past the escalation budget and were therefore re-rated
	// with RBR for the round; EscalatedFlags lists the flags concerned, in
	// rating order (re-rated rounds included — the time was spent).
	Escalations    int
	EscalatedFlags []opt.Flag

	// Compile-cache ledger. These count THIS tune's own behaviour — not
	// the shared cache's global totals, which depend on what other tunes
	// run concurrently — so they are scheduling-independent and safe for
	// the bit-identical determinism contract. CacheLookups is the number
	// of version requests the engine made; CacheMisses the distinct flag
	// sets compiled (or fetched from a shared cache) for it; CacheHits the
	// requests answered by the tune's own memo table.
	CacheLookups int64
	CacheHits    int64
	CacheMisses  int64
	// SharedCode counts distinct flag sets whose generated code
	// fingerprinted identically to another flag set of this tune (the code
	// dedup layer); DedupSkips counts candidate ratings skipped because
	// their code fingerprint matched the base or an already-rated
	// candidate of the same round (the skipped candidate inherits the
	// rated twin's rating).
	SharedCode int
	DedupSkips int

	// Fault & recovery ledger (all zero when fault injection is off).
	// Quarantined lists the flags whose one-flag-off candidate failed
	// golden-output verification (miscompile detected) and was therefore
	// removed from the search, in elimination order. CompileRetries counts
	// injected transient compile failures absorbed by retry;
	// MeasureRetries hung measurements killed and retried; JobRetries
	// panicked rating jobs re-run under derived keys. VerifyInvocations is
	// the number of TS invocations spent on golden-output verification
	// (their simulated time is part of TuningCycles). Like every other
	// field, these are scheduling-independent: fault decisions key on
	// identities, never execution order.
	Quarantined       []opt.Flag
	CompileRetries    int
	MeasureRetries    int
	JobRetries        int
	VerifyInvocations int64
}

// engine is the running state of one tuning process. Cross-job state is
// limited to the compiled-version cache (behind mu) and the result ledger,
// which only the reduction goroutine touches; everything execution-related
// lives in per-job ratingCtx instances.
type engine struct {
	t       *Tuner
	cfg     *Config
	methods []Method
	mi      int // index into methods
	app     *Applicability
	pool    sched.Pool

	prog *ir.Program // program with the instrumented TS
	ts   *ir.Func    // instrumented tuning section

	// rootSeed is the root of every per-job seed derivation.
	rootSeed int64

	// cache is the compile cache (Tuner.Cache, or a private one); nil when
	// Cfg.NoCompileCache is set. local memoizes this tune's own
	// (flag set -> version, fingerprint) resolutions: it keeps repeat
	// lookups off the shared cache's lock and is what the deterministic
	// TuneResult cache counters are derived from. progKey is the HIR hash
	// of the instrumented program, the cache key's program-identity part.
	cache   *vcache.Cache
	progKey uint64
	lookups int64

	// store is the persistent memo store (Tuner.Store), nil when absent —
	// and always nil when fault injection is on (see the Tuner.Store doc).
	store *store.Store

	mu    sync.Mutex
	local map[opt.FlagSet]versionInfo

	// faults is the injection plan (nil when off). golden is the lazily
	// built verification reference; journal/ckptID enable checkpointing;
	// restoring suppresses counter accrual while a resume re-resolves the
	// flag sets a previous process had already compiled and accounted.
	faults    *fault.Plan
	golden    *goldenRef
	journal   *fault.Journal
	ckptID    string
	restoring bool
	// Engine-level fault ledger, guarded by mu and folded into res when
	// tuning finishes (workers must never touch res while jobs run). All
	// of it is keyed by distinct flag-set resolutions, so it is
	// independent of scheduling, caching and resume.
	compileRetries int
	faultCycles    int64 // compile-retry backoff time
	verifyCycles   int64 // golden-output verification time
	verifyInv      int64

	// tb is the trace buffer (nil = tracing off); id the tune identity
	// stamped on every event ("bench/machine/method/dataset"); fpFirst
	// maps each code fingerprint to the label of the flag set that first
	// produced it, for "shared" cache events. fpFirst is touched only on
	// the reduction path, so it needs no lock.
	tb      *trace.Buffer
	id      string
	fpFirst map[uint64]string

	res      *TuneResult
	switched int
	// sharedInv counts the TS invocations the non-WHL rating jobs consumed.
	// Those ratings are interleaved into shared application runs (the
	// paper's "while the application runs" model), so the runs — and their
	// non-TS time — are accounted once, by packing, when tuning finishes.
	sharedInv int64
}

// Tune runs the complete offline tuning process.
func (t *Tuner) Tune() (*TuneResult, error) {
	e, err := t.newEngine()
	if err != nil {
		return nil, err
	}
	if e.tb != nil {
		e.emit(trace.Event{Kind: trace.KindTuneStart,
			Method: e.methods[e.mi].String(), Detail: t.Dataset.Name})
	}
	if err := e.iterativeElimination(); err != nil {
		return nil, err
	}
	// Pack the shared-run ratings into whole application runs: rating k
	// invocations out of runs of N consumes ⌈k/N⌉ runs, each charging its
	// non-TS time once. WHL's dedicated runs were accounted per job.
	if e.sharedInv > 0 {
		n := int64(t.Dataset.NumInvocations)
		runs := (e.sharedInv + n - 1) / n
		e.res.ProgramRuns += int(runs)
		e.res.TuningCycles += runs * t.Bench.NonTSCycles
	}
	e.res.MethodUsed = e.methods[e.mi]
	e.res.MethodSwitches = e.switched
	// Cache counters, derived from the tune's own memo table so they are
	// independent of what other tunes share the cache: misses = distinct
	// flag sets, hits = repeat lookups, shared = flag sets whose code
	// fingerprinted identically to an earlier-seen flag set of this tune.
	e.res.CacheLookups = e.lookups
	e.res.CacheMisses = int64(len(e.local))
	e.res.CacheHits = e.lookups - e.res.CacheMisses
	fps := make(map[uint64]bool, len(e.local))
	for _, vi := range e.local {
		if fps[vi.fp] {
			e.res.SharedCode++
		} else {
			fps[vi.fp] = true
		}
	}
	if e.faults != nil {
		// Recovery overheads join the tuning-time ledger: verification runs
		// and compile-retry backoff are simulated time the faulted tuning
		// process really spends. Hang timeouts were charged per job.
		e.res.TuningCycles += e.faultCycles + e.verifyCycles
		e.res.CompileRetries = e.compileRetries
		e.res.VerifyInvocations = e.verifyInv
	}
	if e.tb != nil {
		e.emitTuneEnd()
	}
	return e.res, nil
}

func (t *Tuner) newEngine() (*engine, error) {
	cfg := t.Cfg
	pool := t.Pool
	if pool == nil {
		pool = sched.NewSerial()
	}
	e := &engine{
		t:        t,
		cfg:      &cfg,
		pool:     pool,
		rootSeed: cfg.Seed ^ t.Bench.Seed(1),
		local:    map[opt.FlagSet]versionInfo{},
		res:      &TuneResult{},
	}
	if !cfg.NoCompileCache {
		e.cache = t.Cache
		if e.cache == nil {
			e.cache = vcache.New()
		}
	}

	e.app = Consult(t.Profile, &cfg)
	if t.Force != nil {
		e.methods = []Method{*t.Force}
	} else {
		e.methods = append([]Method(nil), e.app.Methods...)
	}

	// The tuning build keeps only the counters the component model needs
	// ("the unnecessary instrumentation code for the merged blocks is
	// removed", §2.3); other methods strip all counters.
	instr := analysis.Instrument(t.Bench.TS)
	keep := map[int]bool{}
	if t.Profile.Model != nil {
		keep = t.Profile.Model.KeepCounters
	}
	e.ts = analysis.StripCounters(instr, keep)
	e.prog = t.Bench.Prog.Clone()
	e.prog.AddFunc(e.ts)
	// The cache key hashes the instrumented program: tunes with identical
	// benchmarks and kept-counter sets share compilations, tunes whose
	// instrumentation differs cannot collide.
	e.progKey = vcache.ProgramKey(e.prog)
	if f := cfg.Faults; !f.IsZero() {
		e.faults = f
		// Salt the program identity with the fault plan's fingerprint: a
		// flag set miscompiled under this plan must never collide in a
		// shared cache with the same flag set compiled cleanly (a fault-free
		// tune, a different plan, or the final deployment compile).
		e.progKey ^= f.Fingerprint()
	}
	if t.Store != nil && e.faults == nil {
		e.store = t.Store
	}
	e.journal = t.Journal
	if e.journal != nil {
		e.ckptID = t.CheckpointID
		if e.ckptID == "" {
			method := "auto"
			if t.Force != nil {
				method = t.Force.String()
			}
			e.ckptID = fmt.Sprintf("%s/%s/%s/%s", t.Bench.Name, t.Mach.Name, method, t.Dataset.Name)
		}
	}
	if t.Trace != nil {
		e.tb = t.Trace
		method := "auto"
		if t.Force != nil {
			method = t.Force.String()
		}
		e.id = fmt.Sprintf("%s/%s/%s/%s", t.Bench.Name, t.Mach.Name, method, t.Dataset.Name)
		e.fpFirst = map[uint64]string{}
	}
	return e, nil
}

// versionInfo is a resolved compilation: the frozen version, its code
// fingerprint (vcache.Fingerprint), and — with fault injection on —
// whether golden-output verification flagged it as miscompiled. The
// trailing fields record the resolution's one-time costs (injected
// compile retries, their backoff, verification time) for cache trace
// events; they are pure functions of the compile identity, so they are
// the same whichever call resolved the flag set first.
type versionInfo struct {
	v *sim.Version
	// fp is the 64-bit in-process fingerprint (dedup grouping, trace
	// leader maps); fp128 the full content fingerprint memo keys embed,
	// of which fp is the low half. fromDisk marks resolutions answered by
	// a persistent-store preload rather than a compilation this process.
	fp          uint64
	fp128       vcache.FP128
	fromDisk    bool
	quarantined bool

	retries      int
	retryCycles  int64
	verifyCycles int64
}

// version returns the resolved compilation of the TS under fs, compiling,
// freezing and (with faults on) verifying it on first use. The lock
// serializes compilation, so exactly one Version exists per flag set no
// matter how many jobs request it; with a shared cache, whichever tune
// compiles the key first publishes the (deterministic) result for all.
func (e *engine) version(fs opt.FlagSet) (versionInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resolveLocked(fs)
}

// resolveLocked is version() under an already-held e.mu. With fault
// injection enabled it additionally:
//
//   - draws the flag set's injected transient compile failures — a pure
//     function of the compile identity, so retry counts are independent of
//     scheduling and caching — and absorbs them up to the retry bound,
//     charging deterministic backoff time;
//   - lets the plan miscompile the compilation (fault.Corrupt inside the
//     compile closure, so a corrupted artifact is what lands in the cache
//     under the plan-salted program key). The tuning base "-O3" is exempt:
//     it is the trusted production baseline golden outputs come from;
//   - verifies every non-base compilation against the golden reference and
//     marks failures quarantined.
func (e *engine) resolveLocked(fs opt.FlagSet) (versionInfo, error) {
	if !e.restoring {
		e.lookups++
	}
	if vi, ok := e.local[fs]; ok {
		return vi, nil
	}
	var idKey string
	var retries int
	var retryCycles int64
	if e.faults != nil {
		idKey = fmt.Sprintf("%d/%s/%s/%s", e.progKey, e.ts.Name, fs, e.t.Mach.Name)
		n := e.faults.CompileFailures(idKey)
		if n > e.faults.CompileRetries() {
			return versionInfo{}, fmt.Errorf("tune %s: compile %s: injected compiler crash persisted: %w",
				e.t.Bench.Name, fs, fault.ErrRetriesExhausted)
		}
		retries = n
		for i := 0; i < n; i++ {
			retryCycles += e.faults.Backoff(i)
		}
		if !e.restoring {
			e.compileRetries += n
			e.faultCycles += retryCycles
		}
	}
	compile := func() (*sim.Version, error) {
		v, err := opt.Compile(e.prog, e.ts, fs, e.t.Mach)
		if err == nil && e.faults != nil && fs != opt.O3() && e.faults.Miscompiles(idKey) {
			fault.Corrupt(v, sched.DeriveSeed(e.faults.Seed, "corrupt/"+idKey))
		}
		return v, err
	}
	var vi versionInfo
	var key vcache.Key
	if e.cache != nil {
		key = vcache.Key{Prog: e.progKey, Fn: e.ts.Name, Flags: fs, Machine: e.t.Mach.Name}
		r, err := e.cache.Resolve(key, compile)
		if err != nil {
			return versionInfo{}, fmt.Errorf("tune %s: compile %s: %w", e.t.Bench.Name, fs, err)
		}
		vi = versionInfo{v: r.V, fp: r.FP.Lo, fp128: r.FP, fromDisk: r.FromDisk}
	} else {
		v, err := compile()
		if err != nil {
			return versionInfo{}, fmt.Errorf("tune %s: compile %s: %w", e.t.Bench.Name, fs, err)
		}
		v.Freeze()
		fp := vcache.Fingerprint128(v)
		vi = versionInfo{v: v, fp: fp.Lo, fp128: fp}
	}
	vi.retries = retries
	vi.retryCycles = retryCycles
	if e.faults != nil && fs != opt.O3() {
		quarantined, cycles, inv, err := e.verifyLocked(vi.v)
		if err != nil {
			return versionInfo{}, err
		}
		vi.quarantined = quarantined
		vi.verifyCycles = cycles
		if !e.restoring {
			e.verifyCycles += cycles
			e.verifyInv += inv
		}
		if quarantined && e.cache != nil {
			e.cache.MarkQuarantined(key)
		}
	}
	e.local[fs] = vi
	return vi, nil
}

// versionFresh is version() plus a report of whether the call resolved
// the flag set for the first time — the hit/miss bit of the trace's
// cache events. Used only by the round reduction's precompile walk, so
// the extra map probe never touches the rating hot path.
func (e *engine) versionFresh(fs opt.FlagSet) (versionInfo, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, seen := e.local[fs]
	vi, err := e.resolveLocked(fs)
	return vi, !seen, err
}

// ratingCtx is one rating job's private execution context: simulated
// memory, machine state, measurement clock and data RNG, all derived from
// the job key. A job's outcome is therefore a pure function of
// (benchmark, machine, profile, method, flag sets, root seed, job key) —
// independent of scheduling order and worker count.
type ratingCtx struct {
	e      *engine
	mem    *sim.Memory
	runner *sim.Runner
	clock  *sim.Clock
	rng    *rand.Rand

	// hangs is the job's measurement-hang fault stream (nil when fault
	// injection is off); measureRetries counts the hung measurements this
	// job killed and retried; retryCycles the share of cycles spent on
	// their timeouts and backoff (for the trace's time breakdown).
	hangs          *fault.MeasureStream
	measureRetries int
	retryCycles    int64

	dsIdx     int
	runActive bool
	// invocations counts TS invocations consumed; cycles the simulated
	// time (TS executions, RBR overheads, hang timeouts/backoff, and for
	// WHL the non-TS part of its dedicated runs).
	invocations int64
	cycles      int64
	// runs counts dedicated whole application runs (WHL only; shared-run
	// ratings are packed globally by the engine).
	runs int
}

func (e *engine) newRatingCtx(jobKey string) *ratingCtx {
	mem := sim.NewMemory(e.prog)
	return &ratingCtx{
		e:      e,
		mem:    mem,
		runner: sim.NewRunner(e.t.Mach, mem, sched.DeriveSeed(e.rootSeed, jobKey+"/runner")),
		clock: sim.NewClockWith(NoiseModelFor(e.cfg, e.t.Mach),
			sched.DeriveSeed(e.rootSeed, jobKey+"/clock")),
		rng:   rand.New(rand.NewSource(sched.DeriveSeed(e.rootSeed, jobKey+"/data"))),
		hangs: e.faults.MeasureStream(jobKey),
	}
}

// hangBeforeMeasure draws the injected hang faults preceding one timed
// measurement: each hang is detected by a watchdog timeout and retried
// after deterministic backoff, all charged to the job's simulated time.
// Returns fault.ErrRetriesExhausted (wrapped) when hangs persist past the
// retry bound.
func (c *ratingCtx) hangBeforeMeasure() error {
	if c.hangs == nil {
		return nil
	}
	retries, cost, err := c.hangs.HangRetries()
	c.cycles += cost
	c.retryCycles += cost
	c.measureRetries += retries
	return err
}

// startRun begins a fresh application run over the tuning dataset.
func (c *ratingCtx) startRun() {
	ds := c.e.t.Dataset
	c.runner.ResetMicroarch()
	if ds.Setup != nil {
		ds.Setup(c.mem, c.rng)
	}
	c.dsIdx = 0
	c.runActive = true
}

// nextInvocation yields the arguments (and CBR key) of the next TS
// invocation, starting a new program run when the dataset is exhausted.
func (c *ratingCtx) nextInvocation(needKey bool) (args []float64, key string) {
	if !c.runActive || c.dsIdx >= c.e.t.Dataset.NumInvocations {
		c.startRun()
	}
	args = c.e.t.Dataset.Args(c.dsIdx, c.mem, c.rng)
	c.dsIdx++
	if needKey {
		key = c.e.t.Profile.CBRKeyFor(c.e.t.Bench, args, c.mem)
	}
	return args, key
}

func (e *engine) newRater(m Method, mem *sim.Memory) rater {
	switch m {
	case MethodAVG:
		return &avgRater{cfg: e.cfg}
	case MethodCBR:
		return &cbrRater{cfg: e.cfg, target: e.t.Profile.DominantContext}
	case MethodMBR:
		return newMBRRater(e.t.Profile.Model, e.t.Profile.CAvg, nil, e.cfg)
	case MethodRBR:
		r := &rbrRater{
			cfg:           e.cfg,
			modifiedInput: e.t.Profile.Effects.ModifiedInput(),
			saveElems:     int64(e.t.Profile.ModifiedInputElems),
			improved:      !e.cfg.BasicRBR,
			inspector:     e.cfg.RBRInspector && !e.cfg.BasicRBR,
		}
		if e.cfg.BasicRBR {
			// The basic method saves the whole Input(TS), not just the
			// modified part (Figure 3 step 1 vs Eq. 6).
			r.modifiedInput = nil
			r.saveElems = 0
			for arr := range e.t.Profile.Effects.Reads {
				r.modifiedInput = append(r.modifiedInput, arr)
				if a := mem.Get(arr); a != nil {
					r.saveElems += int64(len(a.Data))
				}
			}
			sort.Strings(r.modifiedInput)
		}
		return r
	}
	panic("core: newRater called for " + m.String())
}

// jobResult is one rating job's outcome plus its ledger contribution.
type jobResult struct {
	rating    Rating
	converged bool
	escalated bool
	// memoized marks an outcome restored from the persistent store's memo
	// table instead of simulated (trace tier "memo"). The restored fields
	// are byte-identical to what the simulation would have produced.
	memoized bool
	ctx      *ratingCtx
	// jobRetries counts injected worker panics this job survived before
	// the attempt that produced the result.
	jobRetries int
	err        error
}

// errMethodExhausted reports that no applicable rating method converged.
var errMethodExhausted = fmt.Errorf("core: all rating methods failed to converge")

// ErrInterrupted reports that Tuner.Interrupt stopped the tune between
// Iterative Elimination rounds. With a Journal attached the completed
// rounds are checkpointed, so re-running the same tune against the same
// journal resumes it and finishes byte-identical to an uninterrupted run.
var ErrInterrupted = errors.New("core: tuning interrupted between rounds")

// rateJob rates the experimental flag set against the base flag set with
// method m in a fresh per-job context named by jobKey. It performs no
// round-level method switching — non-convergence is reported to the round
// reduction, which owns that decision (§3's runtime switching, made
// deterministic). What it may do, when escalatable, is degrade a single
// still-wide CBR or AVG rating to RBR once the escalation budget is spent:
// RBR is always applicable, so the job salvages a usable rating for this
// flag without forcing the whole round onto another method.
func (e *engine) rateJob(jobKey string, m Method, exp, base opt.FlagSet, escalatable bool) jobResult {
	c := e.newRatingCtx(jobKey)
	res := jobResult{ctx: c}
	defer func() { e.pool.Stats().AddCycles(c.cycles) }()

	expVI, err := e.version(exp)
	if err != nil {
		res.err = err
		return res
	}
	expV := expVI.v
	var baseVI versionInfo
	if m != MethodWHL {
		baseVI, err = e.version(base)
		if err != nil {
			res.err = err
			return res
		}
	}
	// Memo hook: with a store attached, look the job's complete identity
	// up in the frozen read set; a hit restores the recorded outcome —
	// rating, convergence, escalation and the job's private cycle ledger —
	// and skips the simulation below entirely. A miss runs the simulation
	// and records the outcome for the store's next flush. Version
	// resolution above already happened either way, so the tune's
	// compile-cache ledger and dedup grouping are identical with and
	// without memo hits. (WHL rates without a base; its key carries the
	// zero fingerprint there.)
	var memoK string
	if e.store != nil {
		memoK = e.rateMemoKey(jobKey, m, expVI.fp128, baseVI.fp128, escalatable)
		if payload, ok := e.store.LookupMemo(MemoKindRate, memoK); ok && restoreRateMemo(&res, payload) {
			res.memoized = true
			return res
		}
		defer func() {
			if res.err == nil && !res.memoized {
				e.store.RecordMemo(MemoKindRate, memoK, encodeRateMemo(&res))
			}
		}()
	}
	if m == MethodWHL {
		res.rating, res.err = e.rateWHL(c, expV)
		res.converged = res.err == nil
		return res
	}
	baseV := baseVI.v

	budget := 0
	if escalatable && (m == MethodCBR || m == MethodAVG) {
		budget = e.cfg.escalationBudget()
	}
	r := e.newRater(m, c.mem)
	needKey := m == MethodCBR
	checkEvery := e.cfg.Window / 8
	if checkEvery < 1 {
		checkEvery = 1
	}
	for used := 0; used < e.cfg.MaxInvPerVersion; {
		if err := c.hangBeforeMeasure(); err != nil {
			res.err = fmt.Errorf("tune %s [%s]: %w", e.t.Bench.Name, m, err)
			return res
		}
		args, key := c.nextInvocation(needKey)
		ic := &invocation{
			args: args, key: key,
			runner: c.runner, clock: c.clock, mem: c.mem,
			best: baseV, exp: expV,
		}
		cycles, err := r.observe(ic)
		c.cycles += cycles
		c.invocations++
		used++
		if err != nil {
			res.err = fmt.Errorf("tune %s [%s]: %w", e.t.Bench.Name, m, err)
			return res
		}
		if used%checkEvery == 0 && r.converged(e.cfg) {
			res.rating, res.converged = r.rating(), true
			return res
		}
		if budget > 0 && !res.escalated && r.used() >= budget {
			r = e.newRater(MethodRBR, c.mem)
			needKey = false
			res.escalated = true
		}
	}
	res.rating = r.rating()
	return res
}

// rateWHL times one whole dedicated application run for the version — the
// state-of-the-art baseline ("executing the whole program to rate one
// version", §1).
func (e *engine) rateWHL(c *ratingCtx, expV *sim.Version) (Rating, error) {
	ds := e.t.Dataset
	c.startRun()
	var total int64
	var measured float64
	for i := 0; i < ds.NumInvocations; i++ {
		if err := c.hangBeforeMeasure(); err != nil {
			return Rating{}, fmt.Errorf("tune %s [WHL]: %w", e.t.Bench.Name, err)
		}
		args := ds.Args(i, c.mem, c.rng)
		_, st, err := c.runner.Run(expV, args)
		if err != nil {
			return Rating{}, fmt.Errorf("tune %s [WHL]: %w", e.t.Bench.Name, err)
		}
		total += st.Cycles
		measured += c.clock.Measure(st.Cycles)
		c.invocations++
	}
	c.dsIdx = ds.NumInvocations
	c.cycles += total + e.t.Bench.NonTSCycles
	c.runs++
	// Per-invocation jitter largely averages out over a whole run, which
	// is what makes WHL "the best that can be achieved by static tuning"
	// (§5.2) — just extremely slow.
	return Rating{Method: MethodWHL, EVAL: measured + float64(e.t.Bench.NonTSCycles),
		Samples: ds.NumInvocations}, nil
}

// account merges one job's ledger into the tuning result. Only the
// reduction goroutine calls it, in ascending job order.
func (e *engine) account(r *jobResult) {
	e.res.TuningCycles += r.ctx.cycles
	e.res.Invocations += r.ctx.invocations
	e.res.ProgramRuns += r.ctx.runs
	e.res.VersionsRated++
	e.res.MeasureRetries += r.ctx.measureRetries
	e.res.JobRetries += r.jobRetries
	if r.ctx.runs == 0 {
		e.sharedInv += r.ctx.invocations
	}
}

// rateJobSafe wraps rateJob in panic isolation. An injected worker panic
// (fault.InjectedPanic) kills the attempt before it consumes simulated
// time; the job is retried under a derived key — "<jobKey>/retry=N" — so
// the retry draws fresh per-job streams yet the whole recovery remains a
// pure function of identities, never of scheduling. Panics past the retry
// bound, and panics that are genuine bugs rather than injections, surface
// as job errors.
func (e *engine) rateJobSafe(jobKey string, m Method, exp, base opt.FlagSet, escalatable bool) jobResult {
	if e.faults == nil {
		return e.rateJob(jobKey, m, exp, base, escalatable)
	}
	key := jobKey
	for attempt := 0; ; {
		res, panicked := e.rateJobAttempt(key, m, exp, base, escalatable)
		if !panicked {
			res.jobRetries = attempt
			return res
		}
		attempt++
		if attempt > e.faults.JobRetries() {
			return jobResult{err: fmt.Errorf("tune %s [%s]: job %s kept panicking: %w",
				e.t.Bench.Name, m, jobKey, fault.ErrRetriesExhausted)}
		}
		key = fmt.Sprintf("%s/retry=%d", jobKey, attempt)
	}
}

func (e *engine) rateJobAttempt(key string, m Method, exp, base opt.FlagSet, escalatable bool) (res jobResult, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fault.InjectedPanic); ok {
				panicked = true
				return
			}
			res = jobResult{err: fmt.Errorf("tune %s [%s]: job %s panicked: %v", e.t.Bench.Name, m, key, r)}
		}
	}()
	if e.faults.PanicsJob(key) {
		panic(fault.InjectedPanic{Key: key})
	}
	return e.rateJob(key, m, exp, base, escalatable), false
}

// rateRound rates every candidate flag removal of one Iterative
// Elimination round, sharded across the pool, and returns each
// candidate's improvement over the round's base rating.
//
// The rating method can switch here: if the base rating or any candidate
// rating fails to converge under the current method and a next applicable
// method remains, the whole round is re-rated under that method (§3,
// "if the system cannot achieve enough accuracy ... it switches to the
// next applicable rating method"). Because the decision depends only on
// the index-ordered job results — never on completion order — the switch
// point is identical at every worker count.
// With fault injection on, a candidate whose compilation failed
// golden-output verification is quarantined: it is never rated (its code
// computes wrong results — its speed is meaningless), its improvement is
// zero, and its index is returned so Iterative Elimination removes the
// flag from the search and records it in TuneResult.Quarantined.
func (e *engine) rateRound(round int, current opt.FlagSet, candidates []opt.Flag) (imps []float64, quarantined []int, err error) {
	// Precompile the base and every candidate and group the candidates by
	// code fingerprint. A candidate whose generated code is identical to the
	// base cannot improve on it — rating it would only hand measurement
	// noise a chance to fake a winner — so it is skipped outright (leader
	// -1, improvement 0). Candidates that share code with an earlier
	// candidate are rated once, by the earliest (the group's leader), and
	// inherit its rating. Fingerprints depend only on the compiler, never on
	// scheduling or the rating method, so the grouping — and therefore every
	// skip — is identical at any worker count and with the cache on or off.
	traced := e.tb != nil
	baseVI, baseFresh, err := e.versionFresh(current)
	if err != nil {
		return nil, nil, err
	}
	if traced {
		e.emitCache(round, 0, baseLabel, baseVI, baseFresh)
	}
	baseFP := baseVI.fp
	leaderOf := make([]int, len(candidates)) // -1: identical to base; -2: quarantined
	firstByFP := make(map[uint64]int, len(candidates))
	var leaders []int
	for i, f := range candidates {
		vi, fresh, err := e.versionFresh(current.Without(f))
		if err != nil {
			return nil, nil, err
		}
		if traced {
			e.emitCache(round, i+1, f.String(), vi, fresh)
		}
		if vi.quarantined {
			leaderOf[i] = -2
			quarantined = append(quarantined, i)
			if traced {
				e.emit(trace.Event{Kind: trace.KindQuarantine, Round: round + 1,
					Ordinal: i + 1, Flag: f.String()})
			}
			continue
		}
		switch first, ok := firstByFP[vi.fp]; {
		case vi.fp == baseFP:
			leaderOf[i] = -1
			if traced {
				e.emit(trace.Event{Kind: trace.KindDedup, Round: round + 1,
					Ordinal: i + 1, Flag: f.String(), Leader: baseLabel})
			}
		case ok:
			leaderOf[i] = first
			if traced {
				e.emit(trace.Event{Kind: trace.KindDedup, Round: round + 1,
					Ordinal: i + 1, Flag: f.String(), Leader: candidates[first].String()})
			}
		default:
			firstByFP[vi.fp] = i
			leaderOf[i] = i
			leaders = append(leaders, i)
		}
	}

	for {
		m := e.methods[e.mi]

		var baseRating Rating
		baseEval := math.NaN()
		baseConverged := true
		if m != MethodRBR {
			// RBR rates relative improvement directly and needs no base
			// measurement; every other method anchors improvements to the
			// base version's absolute rating.
			b := e.rateJobSafe(fmt.Sprintf("round=%d/method=%s/base", round, m), m, current, current, false)
			if b.err != nil {
				return nil, nil, b.err
			}
			e.account(&b)
			if traced {
				e.emitRate(round, 0, baseLabel, &b)
			}
			baseRating = b.rating
			baseEval = b.rating.EVAL
			baseConverged = b.converged
		}

		// Only group leaders are rated; the job keys keep the per-flag
		// format, so a leader's seeds (and rating) do not depend on which
		// other candidates happened to share its code.
		escalatable := e.t.Force == nil
		results := make([]jobResult, len(candidates))
		e.pool.Map(len(leaders), func(j int) {
			i := leaders[j]
			f := candidates[i]
			key := fmt.Sprintf("round=%d/method=%s/flag=%s", round, m, f)
			results[i] = e.rateJobSafe(key, m, current.Without(f), current, escalatable)
		})

		allConverged := baseConverged
		for _, i := range leaders {
			r := &results[i]
			if r.err != nil {
				return nil, nil, r.err
			}
			e.account(r)
			if traced {
				e.emitRate(round, i+1, candidates[i].String(), r)
				if r.escalated {
					e.emit(trace.Event{Kind: trace.KindEscalate, Round: round + 1,
						Ordinal: i + 1, Flag: candidates[i].String(), Method: MethodRBR.String()})
				}
			}
			if r.escalated {
				e.res.Escalations++
				e.res.EscalatedFlags = append(e.res.EscalatedFlags, candidates[i])
			}
			if !r.converged {
				allConverged = false
			}
		}
		// Every non-leader is a rating this round attempt did not run —
		// except quarantined candidates, which were never eligible at all.
		e.res.DedupSkips += len(candidates) - len(leaders) - len(quarantined)

		if !allConverged && e.mi+1 < len(e.methods) {
			// Not converging: switch to the next applicable method and
			// re-rate the round — the base rating's units no longer match.
			e.mi++
			e.switched++
			if traced {
				e.emit(trace.Event{Kind: trace.KindMethodSwitch, Round: round + 1,
					Method: e.methods[e.mi].String(), Detail: m.String()})
			}
			continue
		}
		// Converged, or last resort: accept the ratings as they stand.
		// Under ConvergeCI a candidate's improvement additionally has to be
		// statistically significant: a CBR rating must differ from the base
		// rating by Welch's t-test, and an RBR rating's confidence interval
		// must exclude 1 (no change). Insignificant improvements are zeroed
		// so Iterative Elimination never keeps a flag removal on what is
		// plausibly just noise. AVG is deliberately left ungated — it is the
		// paper's naive baseline — and MBR's VAR is a regression residual
		// ratio, not a sample variance, so no interval exists for it.
		gate := e.cfg.Convergence == ConvergeCI
		conf := e.cfg.confidence()
		imps = make([]float64, len(candidates))
		for _, i := range leaders {
			rt := results[i].rating
			imp := rt.ImprovementOver(baseEval)
			if gate && imp != 0 {
				switch rt.Method {
				case MethodCBR:
					if !stats.WelchSignificant(baseRating.EVAL, baseRating.VAR, baseRating.Samples,
						rt.EVAL, rt.VAR, rt.Samples, conf) {
						imp = 0
					}
				case MethodRBR:
					if math.Abs(rt.EVAL-1) < rt.CIHalf {
						imp = 0
					}
				}
			}
			imps[i] = imp
		}
		for i, l := range leaderOf {
			if l >= 0 && l != i {
				// Identical code, identical rating: inherit the leader's
				// (already gated) improvement.
				imps[i] = imps[l]
			}
		}
		return imps, quarantined, nil
	}
}

// iterativeElimination searches the flag space (paper §5.2, algorithm from
// [11]): starting from -O3, each round rates every remaining flag switched
// off and permanently removes the flag whose removal helps most, until no
// removal improves the rating by more than the threshold. Quarantined
// candidates (miscompiles caught by verification) are removed from the
// search as they are discovered.
//
// With a journal attached, completed rounds are checkpointed and a journal
// that already holds state for this tune's checkpoint ID resumes it: the
// pre-checkpoint rounds are skipped, their flag sets re-resolved without
// re-accounting, and the final TuneResult is byte-identical to an
// uninterrupted run's.
func (e *engine) iterativeElimination() error {
	const maxRounds = 8
	current := opt.O3()
	candidates := opt.AllFlags()
	if e.t.Candidates != nil {
		candidates = append([]opt.Flag(nil), e.t.Candidates...)
	}
	startRound := 0
	stopped := false

	if e.journal != nil {
		if rec, ok := e.journal.Latest(e.ckptID); ok {
			st, err := e.restore(rec.State)
			if err != nil {
				return err
			}
			current = opt.FlagSet(st.Current)
			candidates = flagsOf(st.Candidates)
			startRound = rec.Round + 1
			stopped = rec.Stopped
		}
	}

	for round := startRound; round < maxRounds && !stopped; round++ {
		if e.t.Interrupt != nil && e.t.Interrupt() {
			return ErrInterrupted
		}
		e.res.Rounds = round + 1
		if e.tb != nil {
			e.emit(trace.Event{Kind: trace.KindRoundStart, Round: round + 1,
				Method: e.methods[e.mi].String(), Count: int64(len(candidates))})
		}
		imps, quarantined, err := e.rateRound(round, current, candidates)
		if err != nil {
			return err
		}
		bestIdx := -1
		bestImp := e.cfg.ImprovementThreshold
		for i, imp := range imps {
			if imp > bestImp {
				bestImp, bestIdx = imp, i
			}
		}
		drop := make(map[int]bool, len(quarantined)+1)
		for _, i := range quarantined {
			drop[i] = true
			e.res.Quarantined = append(e.res.Quarantined, candidates[i])
		}
		if bestIdx >= 0 {
			f := candidates[bestIdx]
			current = current.Without(f)
			e.res.Removed = append(e.res.Removed, f)
			drop[bestIdx] = true
		} else {
			stopped = true
		}
		if len(drop) > 0 {
			kept := make([]opt.Flag, 0, len(candidates)-len(drop))
			for i, f := range candidates {
				if !drop[i] {
					kept = append(kept, f)
				}
			}
			candidates = kept
		}
		if e.tb != nil {
			ev := trace.Event{Kind: trace.KindRoundEnd, Round: round + 1,
				Outcome: "stopped", Cycles: e.res.TuningCycles}
			if bestIdx >= 0 {
				ev.Outcome = "removed"
				ev.Flag = e.res.Removed[len(e.res.Removed)-1].String()
				ev.Improvement = bestImp
			}
			e.emit(ev)
		}
		if err := e.checkpoint(round, current, candidates, stopped); err != nil {
			return err
		}
		if e.t.OnRound != nil {
			e.t.OnRound(round + 1)
		}
	}
	e.res.Best = current
	return nil
}

// flagsOf is the inverse of checkpoint.go's intsOf; len 0 maps back to nil
// so restored TuneResult slices compare equal to never-checkpointed ones.
func flagsOf(ints []int) []opt.Flag {
	if len(ints) == 0 {
		return nil
	}
	out := make([]opt.Flag, len(ints))
	for i, v := range ints {
		out[i] = opt.Flag(v)
	}
	return out
}
