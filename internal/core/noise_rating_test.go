package core

import (
	"math/rand"
	"testing"

	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/stats"
)

// TestEscalationToRBR: a CBR candidate rating whose confidence interval
// stays wide past the escalation budget must be escalated to RBR mid-job,
// and the escalation must be visible in the job result.
func TestEscalationToRBR(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CIRelThreshold = 1e-12 // unattainable: CBR can never converge
	cfg.EscalationBudget = 40
	cfg.MaxInvPerVersion = 120
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p}
	e, err := tu.newEngine()
	if err != nil {
		t.Fatal(err)
	}

	flags := opt.AllFlags()
	res := e.rateJob("test/esc", MethodCBR, opt.O3().Without(flags[0]), opt.O3(), true)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !res.escalated {
		t.Fatal("CBR rating past the escalation budget did not escalate")
	}
	if res.rating.Method != MethodRBR {
		t.Errorf("escalated rating method = %s, want RBR", res.rating.Method)
	}

	// The base rating and forced-method jobs must never escalate.
	res = e.rateJob("test/noesc", MethodCBR, opt.O3().Without(flags[0]), opt.O3(), false)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.escalated || res.rating.Method != MethodCBR {
		t.Errorf("non-escalatable job escalated (method %s)", res.rating.Method)
	}

	// A negative budget disables escalation entirely.
	cfg.EscalationBudget = -1
	tu2 := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p}
	e2, err := tu2.newEngine()
	if err != nil {
		t.Fatal(err)
	}
	res = e2.rateJob("test/disabled", MethodCBR, opt.O3().Without(flags[0]), opt.O3(), true)
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.escalated {
		t.Error("escalation fired despite a negative budget")
	}
}

// TestEscalationRecordedInLedger: under noise heavy enough that no CBR
// rating converges, a full Tune must log the escalations it performed.
func TestEscalationRecordedInLedger(t *testing.T) {
	b := tinyBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Noise = &noise.Model{Jitter: 0.2} // ~20% jitter: CIs stay wide
	cfg.MaxInvPerVersion = 120
	cfg.EscalationBudget = 40
	app := Consult(p, &cfg)
	if app.Chosen() != MethodCBR {
		t.Skipf("consultant chose %s; escalation path needs CBR first", app.Chosen())
	}
	tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p}
	res, err := tu.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalations == 0 {
		t.Error("no escalations recorded under 20% jitter")
	}
	if len(res.EscalatedFlags) != res.Escalations {
		t.Errorf("EscalatedFlags has %d entries for %d escalations",
			len(res.EscalatedFlags), res.Escalations)
	}
}

// TestRatingAbandonedPropagates: when outlier rejection gives up on a
// contaminated window, the resulting Rating must say so.
func TestRatingAbandonedPropagates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutlierK = 1e-4
	var ms meanSamples
	for _, v := range []float64{0, 100, 200, 300} {
		ms.add(v)
	}
	if r := ms.evalVar(&cfg, MethodAVG); !r.Abandoned {
		t.Error("contaminated window did not surface Abandoned")
	}

	cfg = DefaultConfig()
	var clean meanSamples
	for i := 0; i < cfg.Window; i++ {
		clean.add(100 + float64(i%3))
	}
	if r := clean.evalVar(&cfg, MethodAVG); r.Abandoned {
		t.Error("clean window reported Abandoned")
	}
}

// TestMeanSamplesCacheStaysFresh: the cached filtered view must be
// indistinguishable from filtering from scratch, at every sample count and
// in any interleaving of evalVar and meanConverged calls.
func TestMeanSamplesCacheStaysFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 8
	rng := rand.New(rand.NewSource(3))
	var cached meanSamples
	for i := 0; i < 200; i++ {
		x := 1000 * (1 + rng.NormFloat64()*0.05)
		if rng.Float64() < 0.1 {
			x *= 5
		}
		cached.add(x)
		// Exercise both cache consumers between additions.
		if i%3 == 0 {
			cached.meanConverged(&cfg)
		}
		got := cached.evalVar(&cfg, MethodAVG)
		fresh := meanSamples{samples: cached.samples}
		want := fresh.evalVar(&cfg, MethodAVG)
		if got != want {
			t.Fatalf("sample %d: cached rating %+v != fresh %+v", i, got, want)
		}
		if cached.meanConverged(&cfg) != fresh.meanConverged(&cfg) {
			t.Fatalf("sample %d: cached convergence diverges from fresh", i)
		}
	}
}

// TestCIPicksFewerWrongWinners is the acceptance check for the CI upgrade:
// under the heavy-spike regime, significance-gated (ConvergeCI) winner
// picking adopts a truly worse experimental version strictly less often
// than legacy raw-mean (ConvergeStdErr) picking on the same seeds — i.e.
// on identical measurement streams.
func TestCIPicksFewerWrongWinners(t *testing.T) {
	model := noise.HeavySpikes(0.012, 0.05, 4)
	const (
		trials     = 40
		baseCycles = 1_000_000
		margin     = 0.002
		seed       = 9
	)
	// ImprovementThreshold 0 isolates the decision rule itself: adopt on
	// any measured win (the raw-mean comparison the CI mode replaces).
	mk := func(mode ConvergenceMode) Config {
		cfg := DefaultConfig()
		cfg.Convergence = mode
		cfg.ImprovementThreshold = 0
		return cfg
	}
	cfgCI, cfgSE := mk(ConvergeCI), mk(ConvergeStdErr)
	ci := RunWinnerTrials(&cfgCI, model, seed, trials, baseCycles, margin)
	se := RunWinnerTrials(&cfgSE, model, seed, trials, baseCycles, margin)
	t.Logf("CI: %+v", ci)
	t.Logf("SE: %+v", se)

	if se.WrongAdopts == 0 {
		t.Fatal("trial parameters too easy: stderr mode made no mistakes")
	}
	if ci.WrongAdopts >= se.WrongAdopts {
		t.Errorf("CI wrong adopts = %d, not strictly below stderr's %d",
			ci.WrongAdopts, se.WrongAdopts)
	}
}

// TestWinnerTrialDeterministic: a trial is a pure function of its inputs.
func TestWinnerTrialDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	model := noise.HeavySpikes(0.012, 0.05, 4)
	w1, n1 := WinnerTrial(&cfg, model, 123, 1_000_000, 1_002_000)
	w2, n2 := WinnerTrial(&cfg, model, 123, 1_000_000, 1_002_000)
	if w1 != w2 || n1 != n2 {
		t.Error("WinnerTrial is not deterministic")
	}
}

// BenchmarkMeanSamplesConvergence measures the cached convergence check
// against the pre-cache behaviour (a fresh outlier filter per call). The
// cached path matters most for CBR on many-context sections, where most
// invocations add no sample yet the engine still polls convergence.
func BenchmarkMeanSamplesConvergence(b *testing.B) {
	cfg := DefaultConfig()
	mkSamples := func() []float64 {
		rng := rand.New(rand.NewSource(5))
		xs := make([]float64, 400)
		for i := range xs {
			xs[i] = 1000 * (1 + rng.NormFloat64()*0.012)
		}
		return xs
	}

	b.Run("cached", func(b *testing.B) {
		ms := meanSamples{samples: mkSamples()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ms.meanConverged(&cfg)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		samples := mkSamples()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-cache implementation: full filter on every check.
			kept, _, _ := stats.RejectOutliers(samples, cfg.OutlierK)
			m := stats.Mean(kept)
			half := stats.MeanCIHalf(stats.Variance(kept), len(kept), cfg.confidence())
			_ = half/m < cfg.ciRelThreshold()
		}
	})
}
