package core

import (
	"fmt"
	"math/rand"
	"sort"

	"peak/internal/bench"
	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/sim"
	"peak/internal/stats"
	"peak/internal/vcache"
)

// AdaptiveTuner implements the paper's online, adaptive scenario (§6 and
// the ADAPT heritage of §4.2): the application is tuned *while in actual
// use*. Every invocation is production work; there is no separate tuning
// time. Per execution context, the tuner explores one-flag-off variants of
// "-O3" with CBR-style same-context windows, adopting a variant as the
// context's production version when its window mean beats the incumbent's
// — the paper's "best" and "experimental" versions dynamically swapped in
// and out (Figure 6).
//
// Exploration is a single greedy elimination pass per context (each flag
// tried once against the current incumbent), which bounds the online
// overhead; contexts the profile never saw are discovered and tuned on the
// fly, the case offline tuning cannot serve (§2.2: "an adaptive tuning
// scenario would make use of all versions").
type AdaptiveTuner struct {
	Bench   *bench.Benchmark
	Mach    *machine.Machine
	Cfg     Config
	Profile *profiling.Profile

	// Window overrides Cfg.Window for the online samples (smaller windows
	// keep exploration overhead low); zero keeps Cfg.Window.
	Window int

	// Cache optionally shares compiled versions with other tuners (see
	// Tuner.Cache). Nil keeps the run's private per-flag-set memo; results
	// are bit-identical either way.
	Cache *vcache.Cache
}

// AdaptiveResult reports one adaptive production run.
type AdaptiveResult struct {
	// TotalCycles is the whole run, exploration included.
	TotalCycles int64
	// Invocations executed; ContextsSeen distinct runtime contexts.
	Invocations  int
	ContextsSeen int
	// Winners maps context keys to their adopted flag sets ("-O3" when
	// nothing beat the default).
	Winners map[string]opt.FlagSet
	// Adoptions counts how many times a context switched its production
	// version; VersionsTried counts explored variants across contexts.
	Adoptions     int
	VersionsTried int
	// Quarantined lists candidate flag sets whose compiled code failed
	// golden-output verification under fault injection (in discovery
	// order); their trials were abandoned without any production
	// invocation running the miscompiled version. CompileRetries counts
	// transient injected compile failures that were retried.
	Quarantined    []opt.FlagSet
	CompileRetries int
}

// ctxState is the per-context exploration state.
type ctxState struct {
	best      opt.FlagSet
	bestMean  float64 // rolling mean of the incumbent under this context
	bestBuf   []float64
	nextFlag  int // next flag index to try (one pass)
	trying    bool
	candidate opt.FlagSet
	candBuf   []float64
}

// Run executes ds once under adaptive tuning and returns the outcome.
// The run is deterministic for a given benchmark, machine and config seed.
func (a *AdaptiveTuner) Run(ds *bench.Dataset) (*AdaptiveResult, error) {
	w := a.Window
	if w == 0 {
		w = a.Cfg.Window
	}
	prog := a.Bench.Prog
	versions := map[opt.FlagSet]*sim.Version{}
	faults := a.Cfg.Faults
	if faults.IsZero() {
		faults = nil
	}
	var progKey uint64
	if a.Cache != nil || faults != nil {
		// Fault decisions are keyed by compile identity, and corrupted
		// artifacts must never collide with clean ones in a shared cache,
		// so the program key is salted with the plan fingerprint.
		progKey = vcache.ProgramKey(prog)
		if faults != nil {
			progKey ^= faults.Fingerprint()
		}
	}
	verifySeed := a.Cfg.Seed ^ a.Bench.Seed(73)
	quarantined := map[opt.FlagSet]bool{}
	var golden *goldenRef
	res := &AdaptiveResult{Winners: map[string]opt.FlagSet{}}

	// version resolves fs, applying the fault plan when one is active:
	// transient compile failures are retried (backoff charged to the run),
	// miscompiles are injected by identity, and every non-base version is
	// checked against the base "-O3" outputs before any production
	// invocation may run it — a failed check quarantines the flag set.
	var version func(fs opt.FlagSet) (v *sim.Version, quar bool, err error)
	version = func(fs opt.FlagSet) (*sim.Version, bool, error) {
		if quarantined[fs] {
			return nil, true, nil
		}
		if v, ok := versions[fs]; ok {
			return v, false, nil
		}
		idKey := fmt.Sprintf("%d/%s/%s/%s", progKey, a.Bench.TS.Name, fs, a.Mach.Name)
		if faults != nil {
			n := faults.CompileFailures(idKey)
			if n > faults.CompileRetries() {
				return nil, false, fmt.Errorf("compile %s: injected compiler crash persisted: %w",
					fs, fault.ErrRetriesExhausted)
			}
			res.CompileRetries += n
			for i := 0; i < n; i++ {
				res.TotalCycles += faults.Backoff(i)
			}
		}
		compile := func() (*sim.Version, error) {
			v, err := opt.Compile(prog, a.Bench.TS, fs, a.Mach)
			if err != nil {
				return nil, err
			}
			if faults != nil && fs != opt.O3() && faults.Miscompiles(idKey) {
				fault.Corrupt(v, sched.DeriveSeed(faults.Seed, "corrupt/"+idKey))
			}
			return v, nil
		}
		var v *sim.Version
		var err error
		if a.Cache != nil {
			v, _, _, err = a.Cache.GetOrCompile(
				vcache.Key{Prog: progKey, Fn: a.Bench.TS.Name, Flags: fs, Machine: a.Mach.Name},
				compile)
		} else {
			v, err = compile()
		}
		if err != nil {
			return nil, false, err
		}
		if faults != nil && fs != opt.O3() {
			if golden == nil {
				base, _, berr := version(opt.O3())
				if berr != nil {
					return nil, false, berr
				}
				rets, snap, cyc, maxInstrs, gerr := runVerifyWorkload(a.Mach, prog, ds, verifySeed, base, 0)
				if gerr != nil {
					return nil, false, fmt.Errorf("golden reference run failed: %w", gerr)
				}
				res.TotalCycles += cyc
				golden = &goldenRef{rets: rets, mem: snap, maxInstrs: maxInstrs}
			}
			maxSteps := golden.maxInstrs * verifyStepFactor
			if maxSteps < 1_000_000 {
				maxSteps = 1_000_000
			}
			rets, snap, cyc, _, rerr := runVerifyWorkload(a.Mach, prog, ds, verifySeed, v, maxSteps)
			res.TotalCycles += cyc
			if rerr != nil || !floatsClose(rets, golden.rets) || !memClose(snap, golden.mem) {
				quarantined[fs] = true
				res.Quarantined = append(res.Quarantined, fs)
				if a.Cache != nil {
					a.Cache.MarkQuarantined(vcache.Key{Prog: progKey, Fn: a.Bench.TS.Name, Flags: fs, Machine: a.Mach.Name})
				}
				return nil, true, nil
			}
		}
		versions[fs] = v
		return v, false, nil
	}

	rng := rand.New(rand.NewSource(a.Cfg.Seed ^ a.Bench.Seed(61)))
	mem := sim.NewMemory(prog)
	if ds.Setup != nil {
		ds.Setup(mem, rng)
	}
	runner := sim.NewRunner(a.Mach, mem, a.Cfg.Seed^a.Bench.Seed(67))
	clock := sim.NewClockWith(NoiseModelFor(&a.Cfg, a.Mach), a.Cfg.Seed^a.Bench.Seed(71))

	states := map[string]*ctxState{}

	for i := 0; i < ds.NumInvocations; i++ {
		args := ds.Args(i, mem, rng)
		// Key on the full static context set: profile-time "constants"
		// may vary in production.
		key := a.Profile.StaticKeyFor(a.Bench, args, mem)
		st := states[key]
		if st == nil {
			st = &ctxState{best: opt.O3()}
			states[key] = st
		}

		// Choose which version this invocation runs: the incumbent, or
		// the current experimental candidate.
		fs := st.best
		if !st.trying && st.nextFlag < opt.NumFlags && len(st.bestBuf) >= w {
			// Incumbent is calibrated; open the next candidate.
			st.candidate = st.best.Without(opt.Flag(st.nextFlag))
			st.nextFlag++
			for st.candidate == st.best && st.nextFlag < opt.NumFlags {
				// Flag already off in the incumbent; skip.
				st.candidate = st.best.Without(opt.Flag(st.nextFlag))
				st.nextFlag++
			}
			if st.candidate != st.best {
				st.trying = true
				st.candBuf = st.candBuf[:0]
				res.VersionsTried++
			}
		}
		if st.trying {
			fs = st.candidate
		}

		v, quar, err := version(fs)
		if err != nil {
			return nil, fmt.Errorf("adaptive %s: %w", a.Bench.Name, err)
		}
		if quar {
			// The candidate failed verification: abandon the trial and run
			// the incumbent (which has always passed — "-O3" is exempt and
			// adopted candidates were verified before their trials).
			st.trying = false
			fs = st.best
			v, _, err = version(fs)
			if err != nil {
				return nil, fmt.Errorf("adaptive %s: %w", a.Bench.Name, err)
			}
		}
		_, stRun, err := runner.Run(v, args)
		if err != nil {
			return nil, fmt.Errorf("adaptive %s: invocation %d: %w", a.Bench.Name, i, err)
		}
		res.TotalCycles += stRun.Cycles
		res.Invocations++
		measured := clock.Measure(stRun.Cycles)

		if st.trying {
			st.candBuf = append(st.candBuf, measured)
			if len(st.candBuf) >= w {
				candMean := robustMean(st.candBuf, a.Cfg.OutlierK)
				if st.bestMean > 0 && candMean < st.bestMean*(1-a.Cfg.ImprovementThreshold) {
					// Adopt: the experimental version becomes "best"
					// (the Figure-6 dynamic swap).
					st.best = st.candidate
					st.bestMean = candMean
					st.bestBuf = append(st.bestBuf[:0], st.candBuf...)
					res.Adoptions++
				}
				st.trying = false
			}
		} else {
			st.bestBuf = append(st.bestBuf, measured)
			if len(st.bestBuf) > 4*w {
				st.bestBuf = st.bestBuf[len(st.bestBuf)-2*w:]
			}
			if len(st.bestBuf) >= w {
				st.bestMean = robustMean(st.bestBuf, a.Cfg.OutlierK)
			}
		}
	}

	res.ContextsSeen = len(states)
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res.Winners[k] = states[k].best
	}
	return res, nil
}

func robustMean(xs []float64, k float64) float64 {
	kept, _, _ := stats.RejectOutliers(xs, k)
	return stats.Mean(kept)
}

// NewAdaptiveTuner profiles the benchmark (for context keying) and returns
// an adaptive tuner with the given config.
func NewAdaptiveTuner(b *bench.Benchmark, m *machine.Machine, cfg Config) (*AdaptiveTuner, error) {
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		return nil, err
	}
	return &AdaptiveTuner{Bench: b, Mach: m, Cfg: cfg, Profile: p}, nil
}
