package core

import (
	"math/rand"
	"testing"

	"peak/internal/bench"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sim"
)

func TestAdaptiveTunerOnline(t *testing.T) {
	b := tinyBenchmark()
	// Longer run so exploration amortizes.
	b.Train.NumInvocations = 3000
	m := machine.PentiumIV()
	cfg := DefaultConfig()
	at, err := NewAdaptiveTuner(b, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at.Window = 10
	res, err := at.Run(b.Train)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invocations != 3000 || res.ContextsSeen != 1 {
		t.Errorf("invocations=%d contexts=%d", res.Invocations, res.ContextsSeen)
	}
	if res.VersionsTried == 0 {
		t.Error("no exploration happened")
	}
	// The adaptive run (including exploration overhead) must not be much
	// worse than running -O3 throughout, and the adopted winner must not
	// be worse than -O3.
	baseTS, _, err := MeasurePerformance(b, b.Train, m, opt.O3())
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.TotalCycles) > 1.1*float64(baseTS) {
		t.Errorf("adaptive run cost %d vs -O3 %d: exploration overhead too high",
			res.TotalCycles, baseTS)
	}
	for key, fs := range res.Winners {
		tuned, _, err := MeasurePerformance(b, b.Train, m, fs)
		if err != nil {
			t.Fatal(err)
		}
		if float64(tuned) > 1.01*float64(baseTS) {
			t.Errorf("context %q adopted a slower version (%d vs %d)", key, tuned, baseTS)
		}
	}
}

// TestAdaptiveDiscoversUnprofiledContexts: the production run presents a
// context the offline profile never observed; the adaptive tuner must
// still key it, explore it, and keep separate state for it (the paper's
// motivation for online tuning, §6).
func TestAdaptiveDiscoversUnprofiledContexts(t *testing.T) {
	b := tinyBenchmark() // profile sees only n=64
	m := machine.SPARCII()
	cfg := DefaultConfig()
	at, err := NewAdaptiveTuner(b, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at.Window = 8

	prod := &bench.Dataset{
		Name: "prod", NumInvocations: 2400,
		Setup: b.Train.Setup,
		Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
			if i%2 == 0 {
				return []float64{64} // the profiled context
			}
			return []float64{24} // never profiled
		},
	}
	res, err := at.Run(prod)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextsSeen != 2 {
		t.Fatalf("contexts seen = %d, want 2 (one unprofiled)", res.ContextsSeen)
	}
	if len(res.Winners) != 2 {
		t.Errorf("winners = %d, want per-context entries", len(res.Winners))
	}
}

// sparseWriterBenchmark reads a large table but writes only a handful of
// cells per invocation — the case the §2.4.2 inspector optimization exists
// for.
func sparseWriterBenchmark() *bench.Benchmark {
	prog := ir.NewProgram()
	prog.AddArray("big", ir.F64, 8192)
	b := irbuild.NewFunc("sparse")
	b.ScalarParam("n", ir.I64).ScalarParam("slot", ir.I64).Local("s", ir.F64)
	fn := b.Body(
		b.For("i", b.I(0), b.V("n"), 1,
			b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("big", b.V("i")))),
		),
		b.Set(b.At("big", b.V("slot")), b.V("s")),
		b.Ret(b.V("s")),
	)
	prog.AddFunc(fn)
	mkDS := func(name string, inv int) *bench.Dataset {
		return &bench.Dataset{
			Name: name, NumInvocations: inv,
			Setup: func(mem *sim.Memory, rng *rand.Rand) {
				d := mem.Get("big").Data
				for i := range d {
					d[i] = rng.Float64()
				}
			},
			Args: func(i int, mem *sim.Memory, rng *rand.Rand) []float64 {
				return []float64{128, float64(4096 + i%1024)}
			},
		}
	}
	return &bench.Benchmark{
		Name: "SPARSE", TSName: "sparse", Class: bench.FP,
		Prog: prog, TS: b.Fn(),
		Train: mkDS("train", 800), Ref: mkDS("ref", 800),
		NonTSCycles: 50_000, PaperInvocations: "(test)",
	}
}

// TestRBRInspectorCutsOverhead: with the write-log inspector, RBR tuning of
// a sparse writer must cost far less than with whole-array save/restore,
// while reaching an equivalent result.
func TestRBRInspectorCutsOverhead(t *testing.T) {
	b := sparseWriterBenchmark()
	m := machine.SPARCII()
	p, err := profiling.Run(b, b.Train, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.ModifiedInputElems < 8000 {
		t.Fatalf("Modified_Input = %d elems; the workload lost its point", p.ModifiedInputElems)
	}
	run := func(inspector bool) *TuneResult {
		cfg := DefaultConfig()
		cfg.RBRInspector = inspector
		forced := MethodRBR
		tu := &Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: cfg, Profile: p, Force: &forced}
		res, err := tu.Tune()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	insp := run(true)
	if insp.TuningCycles*2 >= plain.TuningCycles {
		t.Errorf("inspector tuning %d cycles not well below snapshot tuning %d",
			insp.TuningCycles, plain.TuningCycles)
	}
	// Both must converge on results no worse than -O3.
	for _, res := range []*TuneResult{plain, insp} {
		base, _, _ := MeasurePerformance(b, b.Train, m, opt.O3())
		tuned, _, _ := MeasurePerformance(b, b.Train, m, res.Best)
		if float64(tuned) > 1.01*float64(base) {
			t.Errorf("tuned worse than -O3 (%d vs %d)", tuned, base)
		}
	}
}

// TestInspectorUndoExact: write-log undo must restore memory bit-exactly.
func TestInspectorUndoExact(t *testing.T) {
	b := sparseWriterBenchmark()
	m := machine.SPARCII()
	v, err := opt.Compile(b.Prog, b.TS, opt.O3(), m)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory(b.Prog)
	rng := rand.New(rand.NewSource(5))
	b.Train.Setup(mem, rng)
	before := mem.Snapshot([]string{"big"})

	runner := sim.NewRunner(m, mem, 5)
	runner.RecordWrites = true
	if _, _, err := runner.Run(v, []float64{128, 4500}); err != nil {
		t.Fatal(err)
	}
	runner.RecordWrites = false
	if len(runner.WriteLog) == 0 {
		t.Fatal("no writes recorded")
	}
	mem.UndoWrites(runner.WriteLog)
	after := mem.Snapshot([]string{"big"})
	for i := range before["big"] {
		if before["big"][i] != after["big"][i] {
			t.Fatalf("element %d not restored: %v vs %v", i, before["big"][i], after["big"][i])
		}
	}
}
