package core

import (
	"fmt"
	"strings"

	"peak/internal/profiling"
)

// Applicability is the Rating Approach Consultant's verdict for one tuning
// section (paper §3, §4.2 step 2): which rating methods apply, why the
// others do not, and the order in which to try them (least estimated
// overhead first, "CBR, MBR, RBR, if they are applicable").
type Applicability struct {
	// Methods lists the applicable rating methods, cheapest first. RBR is
	// always present ("applicable to almost all tuning sections", §3).
	Methods []Method
	// CBRReason / MBRReason explain rejection (empty when applicable).
	CBRReason string
	MBRReason string
	// EstCost estimates the number of TS executions needed per rating
	// window under each applicable method (the ordering key).
	EstCost map[Method]float64
}

// Chosen returns the consultant's first choice.
func (a *Applicability) Chosen() Method { return a.Methods[0] }

// Has reports whether m is among the applicable methods.
func (a *Applicability) Has(m Method) bool {
	for _, x := range a.Methods {
		if x == m {
			return true
		}
	}
	return false
}

func (a *Applicability) String() string {
	names := make([]string, len(a.Methods))
	for i, m := range a.Methods {
		names[i] = m.String()
	}
	return strings.Join(names, ",")
}

// Consult decides method applicability from the compile-time analysis and
// the profile run:
//
//   - CBR requires all context variables to be scalars (Figure 1) — with
//     non-scalar array dependences allowed only when the profile shows the
//     array is a run-time constant — plus a reasonable number of contexts
//     and a dominant context frequent enough to supply samples (§2.2).
//   - MBR requires few components and a model that actually fits the
//     profile timings; highly irregular codes (the paper's integer
//     benchmarks) fail the fit test and fall through to RBR (§2.3, §5.1).
//   - RBR always applies (our IR has no irreversible side effects; the
//     paper excludes sections calling malloc/rand/IO, §2.4.1).
func Consult(p *profiling.Profile, cfg *Config) *Applicability {
	a := &Applicability{EstCost: map[Method]float64{}}
	w := float64(cfg.Window)

	cbrOK := true
	switch {
	case !p.ContextSet.Applicable:
		cbrOK = false
		a.CBRReason = p.ContextSet.Reason
		if a.CBRReason == "" {
			a.CBRReason = "non-scalar context variables"
		}
	case !p.ContextArraysConst:
		cbrOK = false
		a.CBRReason = fmt.Sprintf("control flow depends on arrays %v that change between invocations",
			p.ContextSet.NeedConstArrays)
	case p.NumContexts() == 0:
		cbrOK = false
		a.CBRReason = "no contexts observed"
	case p.NumContexts() > cfg.MaxContexts:
		cbrOK = false
		a.CBRReason = fmt.Sprintf("too many contexts (%d > %d)", p.NumContexts(), cfg.MaxContexts)
	case p.DominantShare() < cfg.MinDominantShare:
		cbrOK = false
		a.CBRReason = fmt.Sprintf("dominant context covers only %.1f%% of invocations",
			100*p.DominantShare())
	}
	if cbrOK {
		// A rating window needs w samples of the dominant context; other
		// invocations execute without contributing.
		a.EstCost[MethodCBR] = w / p.DominantShare()
	}

	mbrOK := true
	switch {
	case p.Model == nil:
		mbrOK = false
		a.MBRReason = "no component model"
	case p.Model.ConstantOnly():
		// All counts constant: the model degenerates to plain averaging,
		// which is sound when the workload never varies (single context).
	case len(p.Model.Components) > cfg.MaxComponents:
		mbrOK = false
		a.MBRReason = fmt.Sprintf("too many components (%d > %d)",
			len(p.Model.Components), cfg.MaxComponents)
	case p.ModelVar > cfg.MBRMaxProfileVar:
		mbrOK = false
		a.MBRReason = fmt.Sprintf("model residual variance %.3f exceeds %.3f (irregular code)",
			p.ModelVar, cfg.MBRMaxProfileVar)
	}
	if mbrOK {
		need := 3 * float64(len(p.Model.Components)+1)
		if w > need {
			need = w
		}
		a.EstCost[MethodMBR] = need
	}

	// RBR: per rated invocation the TS runs three times (precondition +
	// two timed versions) plus save/restore traffic.
	rbrPerInv := 3.0
	if p.MeanCycles > 0 {
		rbrPerInv += 2 * float64(cfg.SaveRestoreCyclesPerElem) * float64(p.ModifiedInputElems) / p.MeanCycles
	}
	a.EstCost[MethodRBR] = w * rbrPerInv

	// "Our compiler picks the initial rating approach for each tuning
	// section in the order of CBR, MBR, and RBR, if they are applicable"
	// (§3) — the applicability guards above already encode the overhead
	// reasoning (context counts, dominant share, component counts, fit).
	for _, m := range []Method{MethodCBR, MethodMBR, MethodRBR} {
		if _, ok := a.EstCost[m]; ok {
			a.Methods = append(a.Methods, m)
		}
	}
	return a
}
