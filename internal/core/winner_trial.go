package core

import (
	"fmt"

	"peak/internal/noise"
	"peak/internal/sched"
	"peak/internal/sim"
	"peak/internal/stats"
)

// This file isolates the winner-picking core of one Iterative Elimination
// comparison — rate a base and an experimental version under noise, decide
// whether to adopt the experimental one — so the two convergence regimes
// (ConvergeStdErr's raw-mean comparison vs ConvergeCI's significance-gated
// comparison) can be pitted against each other on identical measurement
// streams. The noise-sensitivity experiment and the acceptance test both
// build on it.

// WinnerTrial rates a base version (true cost baseCycles) against an
// experimental version (true cost expCycles) under the given noise model,
// mirroring the engine's candidate-rating loop: sample both versions until
// the window converges under cfg's convergence criterion (or
// MaxInvPerVersion is hit), then adopt the experimental version when its
// improvement over the base clears cfg.ImprovementThreshold — under
// ConvergeCI only if the difference is also Welch-significant at the
// config's confidence level.
//
// The two measurement streams derive from seed alone, so trials under
// different convergence modes see identical perturbation sequences sample
// for sample ("the same seeds"): any difference in outcome is purely the
// decision rule's.
func WinnerTrial(cfg *Config, model noise.Model, seed int64, baseCycles, expCycles int64) (expWins bool, invocations int) {
	baseClock := sim.NewClockWith(model, sched.DeriveSeed(seed, "base"))
	expClock := sim.NewClockWith(model, sched.DeriveSeed(seed, "exp"))
	var bs, es meanSamples

	checkEvery := cfg.Window / 8
	if checkEvery < 1 {
		checkEvery = 1
	}
	n := 0
	for n < cfg.MaxInvPerVersion {
		bs.add(baseClock.Measure(baseCycles))
		es.add(expClock.Measure(expCycles))
		n++
		if n%checkEvery == 0 && bs.meanConverged(cfg) && es.meanConverged(cfg) {
			break
		}
	}

	base := bs.evalVar(cfg, MethodCBR)
	exp := es.evalVar(cfg, MethodCBR)
	imp := exp.ImprovementOver(base.EVAL)
	if cfg.Convergence == ConvergeCI &&
		!stats.WelchSignificant(base.EVAL, base.VAR, base.Samples,
			exp.EVAL, exp.VAR, exp.Samples, cfg.confidence()) {
		imp = 0
	}
	return imp > cfg.ImprovementThreshold, 2 * n
}

// WinnerTrialStats aggregates repeated WinnerTrial runs over paired
// truly-worse and truly-better experimental versions.
type WinnerTrialStats struct {
	// Trials is the number of (worse, better) trial pairs run.
	Trials int
	// WrongAdopts counts trials that adopted a truly worse experimental
	// version — the rating error that costs real performance.
	WrongAdopts int
	// Misses counts trials that declined a truly better experimental
	// version — the conservative error, costing only a lost improvement.
	Misses int
	// Invocations is the total TS invocations all trials consumed.
	Invocations int
}

// RunWinnerTrials runs `trials` paired winner trials under the model: in
// each pair the experimental version is once truly worse and once truly
// better than the base by the relative margin (e.g. 0.002 = 0.2%). Per-pair
// seeds derive from seed, so repeated calls — in particular, calls that
// differ only in cfg.Convergence — replay identical measurement streams.
func RunWinnerTrials(cfg *Config, model noise.Model, seed int64, trials int, baseCycles int64, margin float64) WinnerTrialStats {
	st := WinnerTrialStats{Trials: trials}
	for i := 0; i < trials; i++ {
		worse := int64(float64(baseCycles) * (1 + margin))
		better := int64(float64(baseCycles) * (1 - margin))

		win, inv := WinnerTrial(cfg, model, sched.DeriveSeed(seed, fmt.Sprintf("worse/trial=%d", i)),
			baseCycles, worse)
		st.Invocations += inv
		if win {
			st.WrongAdopts++
		}

		win, inv = WinnerTrial(cfg, model, sched.DeriveSeed(seed, fmt.Sprintf("better/trial=%d", i)),
			baseCycles, better)
		st.Invocations += inv
		if !win {
			st.Misses++
		}
	}
	return st
}
