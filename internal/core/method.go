// Package core implements the paper's contribution: the three optimization
// rating methods — context-based (CBR), model-based (MBR), and
// re-execution-based (RBR) rating — together with the two baselines the
// paper compares against (AVG and WHL), the Rating Approach Consultant that
// selects among them, and the PEAK tuning engine that drives an Iterative
// Elimination search over compiler optimization flags using those ratings.
package core

import (
	"fmt"

	"peak/internal/fault"
	"peak/internal/machine"
	"peak/internal/noise"
	"peak/internal/sim"
)

// Method identifies a rating method.
type Method int

// Rating methods. CBR, MBR and RBR are the paper's contributions (§2);
// AVG and WHL are the baselines of §5.2.
const (
	// MethodCBR compares invocations that share an execution context.
	MethodCBR Method = iota
	// MethodMBR fits T_TS = Σ T_i·C_i across contexts by regression.
	MethodMBR
	// MethodRBR re-executes base and experimental versions in the same
	// context (improved variant: preconditioning plus order swapping).
	MethodRBR
	// MethodAVG naively averages invocation times regardless of context.
	MethodAVG
	// MethodWHL times whole-program runs, one per version (the
	// state-of-the-art baseline the paper reduces tuning time against).
	MethodWHL
)

var methodNames = [...]string{"CBR", "MBR", "RBR", "AVG", "WHL"}

func (m Method) String() string {
	if m >= 0 && int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod converts a method name.
func ParseMethod(s string) (Method, bool) {
	for i, n := range methodNames {
		if n == s {
			return Method(i), true
		}
	}
	return 0, false
}

// Rating is the paper's (EVAL, VAR) pair for one version under one rating
// method (§3), plus bookkeeping.
type Rating struct {
	Method Method
	// EVAL is the rating value. For CBR/MBR/AVG/WHL it estimates execution
	// time (lower is better); for RBR it is the mean relative improvement
	// of the experimental over the base version (higher is better).
	EVAL float64
	// VAR is the method's rating variance: sample variance of the window
	// for CBR/AVG/RBR, SSR/SST of the regression for MBR.
	VAR float64
	// Samples is the number of measurements incorporated; Outliers the
	// number rejected.
	Samples  int
	Outliers int
	// CIHalf is the half-width of the Student-t confidence interval around
	// EVAL at the config's confidence level (+Inf below 2 samples; 0 for
	// MBR/WHL, whose VAR is not a sample variance).
	CIHalf float64
	// Abandoned reports that outlier rejection gave up on this window (it
	// would have discarded nearly every sample), so EVAL/VAR come from the
	// raw, contaminated window.
	Abandoned bool
}

// Better reports whether rating a beats rating b, assuming both rate
// versions against the same base with the same method.
func (a Rating) Better(b Rating) bool {
	if a.Method == MethodRBR {
		return a.EVAL > b.EVAL
	}
	return a.EVAL < b.EVAL
}

// ImprovementOver returns the relative improvement the rated experimental
// version achieves over a base rated baseEval with the same method
// (positive = experimental faster). For RBR the rating itself encodes the
// improvement and baseEval is ignored.
func (a Rating) ImprovementOver(baseEval float64) float64 {
	if a.Method == MethodRBR {
		return a.EVAL - 1
	}
	if a.EVAL == 0 {
		return 0
	}
	return baseEval/a.EVAL - 1
}

// ConvergenceMode selects how the windowed raters (CBR, AVG, RBR) decide
// that a rating is consistent enough.
type ConvergenceMode int

const (
	// ConvergeCI (the default) declares convergence when the Student-t
	// confidence interval around the window mean, at the config's
	// Confidence level, has relative half-width below CIRelThreshold.
	// Paired with significance gating in the engine (Welch's t-test for
	// CBR, CI-contains-1 for RBR), it follows the statistically rigorous
	// speedup methodology of Touati et al. rather than raw mean comparison.
	ConvergeCI ConvergenceMode = iota
	// ConvergeStdErr is the legacy criterion: relative standard error of
	// the window mean below VarThreshold, winners picked by raw means.
	ConvergeStdErr
)

// Config holds the tuning-time parameters of the rating process (§3).
type Config struct {
	// Window is the number of invocation measurements per rating window
	// (w in Table 1).
	Window int
	// VarThreshold is the convergence threshold: for CBR/AVG/RBR the
	// relative standard error of the window mean must fall below it; for
	// MBR the regression's SSR/SST must.
	VarThreshold float64
	// MBRVarThreshold is the residual-variance bound for MBR convergence.
	MBRVarThreshold float64
	// OutlierK is the MAD-based outlier rejection multiplier.
	OutlierK float64
	// MaxInvPerVersion bounds invocations spent on one version before the
	// engine abandons the current rating method and switches to the next
	// applicable one (§3).
	MaxInvPerVersion int
	// SaveRestoreCyclesPerElem is the RBR overhead charged per element of
	// Modified_Input(TS) saved or restored.
	SaveRestoreCyclesPerElem int64
	// BasicRBR selects the paper's basic Figure-3 re-execution method
	// (no cache preconditioning, no order swapping) instead of the
	// improved Figure-4 method. Kept for the §2.4 ablation: the first
	// timed execution "may precondition the cache, affecting the second
	// one", which biases the basic method's ratings.
	BasicRBR bool
	// RBRInspector replaces the whole-array save/restore of
	// Modified_Input(TS) with the paper's inspector optimization
	// (§2.4.2): the runs record the addresses and old values of their
	// write references, and the undo touches only those elements. Far
	// cheaper when the section writes sparsely into large inputs.
	RBRInspector bool
	// MaxContexts bounds CBR applicability ("to keep the number of
	// contexts reasonable", §2.2).
	MaxContexts int
	// MinDominantShare is the minimum fraction of invocations the dominant
	// context must cover for CBR to be worthwhile.
	MinDominantShare float64
	// MaxComponents bounds MBR applicability ("if there are many
	// components ... MBR is not applied", §2.3).
	MaxComponents int
	// MBRMaxProfileVar is the maximum profile-run SSR/SST for MBR to be
	// considered accurate enough (rejects highly irregular codes).
	MBRMaxProfileVar float64
	// ImprovementThreshold is the minimum relative improvement Iterative
	// Elimination requires to keep a flag removal.
	ImprovementThreshold float64
	// Seed drives measurement noise.
	Seed int64
	// Convergence selects the convergence criterion; the zero value is
	// ConvergeCI.
	Convergence ConvergenceMode
	// Confidence is the two-sided confidence level for intervals and Welch
	// tests under ConvergeCI (0 means 0.95).
	Confidence float64
	// CIRelThreshold is the ConvergeCI bound on CI half-width relative to
	// the window mean (0 means 0.01).
	CIRelThreshold float64
	// EscalationBudget is the number of invocations after which a still
	// wide CBR or AVG candidate rating escalates to RBR for the round
	// (graceful degradation before the round-level method switch). 0 means
	// MaxInvPerVersion/3; negative disables escalation.
	EscalationBudget int
	// Noise overrides the machine's default measurement-noise model (see
	// NoiseModelFor); nil keeps the machine default.
	Noise *noise.Model
	// Faults enables deterministic fault injection: transient compile
	// failures, miscompiles (caught by golden-output verification and
	// quarantined), measurement hangs (retried with backoff), and rating-
	// job panics (isolated and retried). Nil — or a plan with all rates
	// zero — disables injection entirely and the engine's recovery
	// machinery stays out of the measurement path, so fault-free outputs
	// are byte-identical to builds without this feature. The determinism
	// contract extends to injection: same seed + same plan ⇒ byte-identical
	// results at any worker count, cache on or off, resumed or not.
	Faults *fault.Plan
	// NoCompileCache disables the compile cache (internal/vcache): every
	// tune falls back to a private per-tune memo table with direct
	// compilation. Outputs are bit-identical either way (compilation is
	// deterministic); the switch exists for benchmarking the cache and for
	// the determinism cross-check in the test suite.
	NoCompileCache bool
}

// confidence returns the effective confidence level.
func (c *Config) confidence() float64 {
	if c.Confidence == 0 {
		return 0.95
	}
	return c.Confidence
}

// ciRelThreshold returns the effective ConvergeCI threshold.
func (c *Config) ciRelThreshold() float64 {
	if c.CIRelThreshold == 0 {
		return 0.01
	}
	return c.CIRelThreshold
}

// escalationBudget returns the effective escalation budget (0 = disabled).
func (c *Config) escalationBudget() int {
	if c.EscalationBudget < 0 {
		return 0
	}
	if c.EscalationBudget == 0 {
		return c.MaxInvPerVersion / 3
	}
	return c.EscalationBudget
}

// NoiseModelFor returns the measurement-noise model rating runs under on
// machine m: cfg.Noise when set, otherwise the machine's default
// jitter-plus-spikes model (sim.DefaultNoise).
func NoiseModelFor(cfg *Config, m *machine.Machine) noise.Model {
	if cfg.Noise != nil {
		return *cfg.Noise
	}
	return sim.DefaultNoise(m)
}

// DefaultConfig mirrors the paper's operating point (window sizes of tens
// of invocations, §5.1).
func DefaultConfig() Config {
	return Config{
		Window:                   40,
		VarThreshold:             0.005,
		MBRVarThreshold:          0.02,
		OutlierK:                 4,
		MaxInvPerVersion:         1200,
		SaveRestoreCyclesPerElem: 2,
		MaxContexts:              8,
		MinDominantShare:         0.02,
		MaxComponents:            6,
		MBRMaxProfileVar:         0.05,
		ImprovementThreshold:     0.01,
		Seed:                     2004,
		Convergence:              ConvergeCI,
		Confidence:               0.95,
		CIRelThreshold:           0.01,
	}
}
