package core

import (
	"math"

	"peak/internal/analysis"
	"peak/internal/regress"
	"peak/internal/sim"
	"peak/internal/stats"
)

// invocation carries one TS invocation through a rater.
type invocation struct {
	args   []float64
	key    string // CBR context key (pre-invocation)
	runner *sim.Runner
	clock  *sim.Clock
	mem    *sim.Memory
	best   *sim.Version
	exp    *sim.Version
}

// rater accumulates rating state for one experimental version.
type rater interface {
	method() Method
	// observe executes the TS for this invocation (the rater controls how:
	// one version, or RBR's save/run/restore/run sequence) and returns the
	// simulated cycles consumed, which the engine adds to the tuning-time
	// ledger.
	observe(ic *invocation) (int64, error)
	// rating computes the current EVAL/VAR.
	rating() Rating
	// converged reports whether the rating is consistent enough (§3).
	converged(cfg *Config) bool
	// used is the number of invocations consumed for this version.
	used() int
	// reset clears state for a new experimental version.
	reset()
}

// meanSamples implements the windowed mean/variance rating shared by AVG,
// CBR and RBR, with outlier elimination. The outlier filter is O(n log n),
// and both rating() and the periodic convergence checks need its output, so
// the filtered window is cached and recomputed only when new samples have
// arrived since the last filter run (see BenchmarkMeanSamplesConvergence).
type meanSamples struct {
	samples []float64
	seen    int

	fN         int // sample count the cache below was computed from
	fKept      []float64
	fRejected  int
	fAbandoned bool
	fMean      float64
	fVar       float64
	fCIHalf    float64
}

func (s *meanSamples) add(x float64) { s.samples = append(s.samples, x) }

// filter brings the cached outlier-rejected view of the window up to date.
func (s *meanSamples) filter(cfg *Config) {
	if s.fN == len(s.samples) && s.fN > 0 {
		return
	}
	s.fKept, s.fRejected, s.fAbandoned = stats.RejectOutliers(s.samples, cfg.OutlierK)
	s.fMean = stats.Mean(s.fKept)
	s.fVar = stats.Variance(s.fKept)
	// The Student-t critical value behind the half-width costs far more
	// than the filter itself, so it is part of the cached state.
	s.fCIHalf = stats.MeanCIHalf(s.fVar, len(s.fKept), cfg.confidence())
	s.fN = len(s.samples)
}

func (s *meanSamples) evalVar(cfg *Config, m Method) Rating {
	s.filter(cfg)
	return Rating{
		Method:    m,
		EVAL:      s.fMean,
		VAR:       s.fVar,
		Samples:   len(s.fKept),
		Outliers:  s.fRejected,
		CIHalf:    s.fCIHalf,
		Abandoned: s.fAbandoned,
	}
}

func (s *meanSamples) meanConverged(cfg *Config) bool {
	if len(s.samples) < cfg.Window {
		return false
	}
	s.filter(cfg)
	n := len(s.fKept)
	if s.fMean == 0 || n < 2 {
		return false
	}
	if cfg.Convergence == ConvergeStdErr {
		stderr := math.Sqrt(s.fVar/float64(n)) / math.Abs(s.fMean)
		return stderr < cfg.VarThreshold
	}
	return s.fCIHalf/math.Abs(s.fMean) < cfg.ciRelThreshold()
}

// --- AVG --------------------------------------------------------------------

// avgRater naively averages invocation times regardless of context (§5.2's
// AVG baseline). It "does not generally produce consistent ratings ...
// because it ignores the context of each invocation".
type avgRater struct {
	meanSamples
	cfg *Config
}

func (r *avgRater) method() Method { return MethodAVG }

func (r *avgRater) observe(ic *invocation) (int64, error) {
	_, st, err := ic.runner.Run(ic.exp, ic.args)
	if err != nil {
		return 0, err
	}
	r.seen++
	r.add(ic.clock.Measure(st.Cycles))
	return st.Cycles, nil
}

func (r *avgRater) rating() Rating { return r.evalVar(r.cfg, MethodAVG) }

// converged: AVG "simply takes the timing average of a number of
// invocations, regardless of the TS's context" (§5.2) — a fixed window with
// no consistency check, which is exactly why it can pick losers.
func (r *avgRater) converged(cfg *Config) bool { return len(r.samples) >= cfg.Window }
func (r *avgRater) used() int                  { return r.seen }
func (r *avgRater) reset()                     { r.meanSamples = meanSamples{} }

// --- CBR --------------------------------------------------------------------

// cbrRater rates a version using only invocations whose context matches the
// target context (the dominant one in offline tuning, §2.2). Invocations
// with other contexts still execute (and cost time) but contribute no
// samples — the source of CBR's inefficiency when contexts are many
// (MGRID_CBR in Figure 7).
type cbrRater struct {
	meanSamples
	target string
	cfg    *Config
}

func (r *cbrRater) method() Method { return MethodCBR }

func (r *cbrRater) observe(ic *invocation) (int64, error) {
	_, st, err := ic.runner.Run(ic.exp, ic.args)
	if err != nil {
		return 0, err
	}
	r.seen++
	if ic.key == r.target {
		r.add(ic.clock.Measure(st.Cycles))
	}
	return st.Cycles, nil
}

func (r *cbrRater) rating() Rating             { return r.evalVar(r.cfg, MethodCBR) }
func (r *cbrRater) converged(cfg *Config) bool { return r.meanConverged(cfg) }
func (r *cbrRater) used() int                  { return r.seen }
func (r *cbrRater) reset()                     { r.meanSamples = meanSamples{} }

// --- MBR --------------------------------------------------------------------

// mbrRater gathers the TS-invocation-time vector Y and component-count
// matrix C and solves Y = T·C by linear regression (§2.3). EVAL is the
// dominant component's T_i when that component carries at least 90% of the
// profile-run time, otherwise the estimate T_avg = Σ T_i·C_avg_i (Eq. 4).
type mbrRater struct {
	model *analysis.ComponentModel
	cAvg  []float64
	// dominant is the index of the dominant component, or -1 for T_avg.
	dominant int
	cfg      *Config

	rows  [][]float64
	times []float64
	seen  int
}

func newMBRRater(model *analysis.ComponentModel, cAvg []float64, profT []float64, cfg *Config) *mbrRater {
	r := &mbrRater{model: model, cAvg: cAvg, dominant: -1, cfg: cfg}
	// Identify a dominant component from profile component times (profT
	// may be nil when no profile regression was possible).
	if profT != nil && len(profT) == len(cAvg) {
		total := 0.0
		for i := range profT {
			total += profT[i] * cAvg[i]
		}
		for i := range profT {
			if total > 0 && profT[i]*cAvg[i] >= 0.9*total {
				r.dominant = i
			}
		}
	}
	return r
}

func (r *mbrRater) method() Method { return MethodMBR }

func (r *mbrRater) observe(ic *invocation) (int64, error) {
	_, st, err := ic.runner.Run(ic.exp, ic.args)
	if err != nil {
		return 0, err
	}
	r.seen++
	r.rows = append(r.rows, r.model.CountsFor(st.Counters))
	r.times = append(r.times, ic.clock.Measure(st.Cycles))
	return st.Cycles, nil
}

func (r *mbrRater) solve() (*regress.Result, bool) {
	if len(r.rows) < len(r.model.Components)+1 {
		return nil, false
	}
	res, err := regress.Solve(r.rows, r.times)
	if err != nil {
		return nil, false
	}
	return res, true
}

// constantOnly reports whether the model degenerates to the constant
// component (all counters constant in the profile run — e.g. EQUAKE's fixed
// sparse structure). MBR then reduces to averaging invocation times, which
// is exactly the paper's observation that MBR and AVG "are equivalent to
// CBR" when there is a single context (§5.2).
func (r *mbrRater) constantOnly() bool {
	return len(r.model.Components) == 1 && r.model.Components[0].Constant
}

func (r *mbrRater) rating() Rating {
	if r.constantOnly() {
		ms := meanSamples{samples: r.times}
		rt := ms.evalVar(r.cfg, MethodMBR)
		return rt
	}
	res, ok := r.solve()
	if !ok {
		return Rating{Method: MethodMBR, EVAL: math.Inf(1), VAR: math.Inf(1), Samples: len(r.times)}
	}
	eval := 0.0
	if r.dominant >= 0 && r.dominant < len(res.Coef) {
		eval = res.Coef[r.dominant]
	} else {
		for i, c := range res.Coef {
			if i < len(r.cAvg) {
				eval += c * r.cAvg[i]
			}
		}
	}
	return Rating{Method: MethodMBR, EVAL: eval, VAR: res.VarRatio(), Samples: len(r.times)}
}

func (r *mbrRater) minRows(cfg *Config) int {
	need := 3 * (len(r.model.Components) + 1)
	if cfg.Window > need {
		need = cfg.Window
	}
	return need
}

func (r *mbrRater) converged(cfg *Config) bool {
	if len(r.rows) < r.minRows(cfg) {
		return false
	}
	if r.constantOnly() {
		ms := meanSamples{samples: r.times}
		return ms.meanConverged(cfg)
	}
	res, ok := r.solve()
	if !ok {
		return false
	}
	return res.VarRatio() < cfg.MBRVarThreshold
}

func (r *mbrRater) used() int { return r.seen }
func (r *mbrRater) reset()    { r.rows, r.times, r.seen = nil, nil, 0 }

// --- RBR --------------------------------------------------------------------

// rbrRater forces re-execution under the same context (§2.4). The improved
// method (Figure 4) swaps the two versions at each invocation, saves and
// restores only Modified_Input(TS), and runs a preconditioning execution so
// cache state does not favour whichever version runs second.
type rbrRater struct {
	meanSamples
	// modifiedInput is Input(TS) ∩ Def(TS) at array granularity (Eq. 6).
	modifiedInput []string
	// saveElems is the total element count of modifiedInput.
	saveElems int64
	// improved selects the Figure-4 method; the basic Figure-3 method
	// (no precondition, no swapping, full input save) is kept for the
	// ablation experiments.
	improved bool
	// inspector uses write logging instead of snapshots (§2.4.2).
	inspector bool
	cfg       *Config
	flip      bool
}

func (r *rbrRater) method() Method { return MethodRBR }

func (r *rbrRater) observe(ic *invocation) (int64, error) {
	if r.inspector {
		return r.observeInspector(ic)
	}
	var overhead int64
	snap := ic.mem.Snapshot(r.modifiedInput)
	overhead += r.saveElems * r.cfg.SaveRestoreCyclesPerElem

	// Basic method (Figure 3): always base first, no preconditioning —
	// the first execution warms the cache for the second, which biases
	// the ratio toward the experimental version.
	v1, v2 := ic.best, ic.exp
	if r.improved && r.flip {
		v1, v2 = v2, v1
	}
	r.flip = !r.flip

	if r.improved {
		// Precondition run: bring the data into the cache so the first
		// timed execution is not systematically colder than the second.
		_, pre, err := ic.runner.Run(v1, ic.args)
		if err != nil {
			return overhead, err
		}
		overhead += pre.Cycles
		ic.mem.Restore(snap)
		overhead += r.saveElems * r.cfg.SaveRestoreCyclesPerElem
	}

	_, s1, err := ic.runner.Run(v1, ic.args)
	if err != nil {
		return overhead, err
	}
	t1 := ic.clock.Measure(s1.Cycles)
	ic.mem.Restore(snap)
	overhead += r.saveElems * r.cfg.SaveRestoreCyclesPerElem

	_, s2, err := ic.runner.Run(v2, ic.args)
	if err != nil {
		return overhead + s1.Cycles, err
	}
	t2 := ic.clock.Measure(s2.Cycles)

	// R_{exp/best} = T_best / T_exp (Eq. 5); undo the swap.
	tBest, tExp := t1, t2
	if v1 == ic.exp {
		tBest, tExp = t2, t1
	}
	if tExp > 0 {
		r.add(tBest / tExp)
	}
	r.seen++
	return overhead + s1.Cycles + s2.Cycles, nil
}

func (r *rbrRater) rating() Rating             { return r.evalVar(r.cfg, MethodRBR) }
func (r *rbrRater) converged(cfg *Config) bool { return r.meanConverged(cfg) }
func (r *rbrRater) used() int                  { return r.seen }
func (r *rbrRater) reset() {
	r.meanSamples = meanSamples{}
	r.flip = false
}

// observeInspector is the improved method with the §2.4.2 inspector: each
// run records its own writes, and the undo replays just those elements. A
// small per-write recording cost models the inserted inspector code; the
// undo costs two save/restore units per touched element (address + value).
func (r *rbrRater) observeInspector(ic *invocation) (int64, error) {
	var overhead int64
	runner := ic.runner
	runUndo := func(v *sim.Version, undo bool) (int64, float64, error) {
		runner.WriteLog = runner.WriteLog[:0]
		runner.RecordWrites = true
		_, st, err := runner.Run(v, ic.args)
		runner.RecordWrites = false
		if err != nil {
			return 0, 0, err
		}
		// Inspector instructions: ~1 cycle per recorded write.
		cost := st.Cycles + int64(len(runner.WriteLog))
		if undo {
			ic.mem.UndoWrites(runner.WriteLog)
			cost += 2 * int64(len(runner.WriteLog)) * r.cfg.SaveRestoreCyclesPerElem
		}
		return cost, ic.clock.Measure(st.Cycles), nil
	}

	v1, v2 := ic.best, ic.exp
	if r.flip {
		v1, v2 = v2, v1
	}
	r.flip = !r.flip

	// Precondition, undone.
	c, _, err := runUndo(v1, true)
	overhead += c
	if err != nil {
		return overhead, err
	}
	// First timed version, undone.
	c, t1, err := runUndo(v1, true)
	overhead += c
	if err != nil {
		return overhead, err
	}
	// Second timed version: its writes stand (one logical execution).
	c, t2, err := runUndo(v2, false)
	overhead += c
	if err != nil {
		return overhead, err
	}

	tBest, tExp := t1, t2
	if v1 == ic.exp {
		tBest, tExp = t2, t1
	}
	if tExp > 0 {
		r.add(tBest / tExp)
	}
	r.seen++
	return overhead, nil
}
