package peak

// Benchmark harness: one testing.B entry per table/figure of the paper's
// evaluation (DESIGN.md §4), plus microbenchmarks for the substrate.
//
//	go test -bench=. -benchmem                 # everything (minutes)
//	go test -bench=Table1 -benchtime=1x        # one experiment, one pass
//
// The experiment benchmarks perform the full regeneration per iteration and
// report the headline quantities via b.ReportMetric, so `-benchtime=1x` is
// the sensible setting; the default 1s target also ends up running a single
// iteration for the heavy ones.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"

	"peak/internal/core"
	"peak/internal/experiments"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/regress"
	"peak/internal/sim"
	"peak/internal/workloads"
)

// --- Table 1: rating consistency --------------------------------------------

func benchmarkTable1(b *testing.B, m *machine.Machine) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(m, experiments.PaperWindows, &cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 14 {
			b.Fatalf("only %d rows", len(rows))
		}
		// Report the w=160 sigma of the first row as a stability canary.
		b.ReportMetric(rows[0].Windows[160].Sigma*100, "sigma160x100")
	}
}

func BenchmarkTable1ConsistencySPARC(b *testing.B) { benchmarkTable1(b, machine.SPARCII()) }
func BenchmarkTable1ConsistencyP4(b *testing.B)    { benchmarkTable1(b, machine.PentiumIV()) }

// --- Figure 2: the MBR regression example -----------------------------------

func BenchmarkFigure2MBR(b *testing.B) {
	y := []float64{11015, 5508, 6626, 6044, 8793}
	x := [][]float64{{100, 1}, {50, 1}, {60, 1}, {55, 1}, {80, 1}}
	for i := 0; i < b.N; i++ {
		res, err := regress.Solve(x, y)
		if err != nil {
			b.Fatal(err)
		}
		if res.Coef[0] < 110 || res.Coef[0] > 110.1 {
			b.Fatalf("T1 = %v, want 110.05", res.Coef[0])
		}
	}
}

// --- Figure 7 (a)+(c): SPARC II improvements and tuning times ----------------

func benchmarkFigure7(b *testing.B, m *machine.Machine) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		entries, err := experiments.Figure7(m, &cfg)
		if err != nil {
			b.Fatal(err)
		}
		h := experiments.Summarize(entries)
		b.ReportMetric(100*h.MaxImprovement, "maxImprove%")
		b.ReportMetric(100*h.AvgReduction, "avgTimeReduction%")
	}
}

// BenchmarkFigure7aSPARC regenerates Figure 7(a) and (c): performance
// improvement over -O3 and tuning time normalized to WHL on the
// SPARC-II-like machine.
func BenchmarkFigure7aSPARC(b *testing.B) { benchmarkFigure7(b, machine.SPARCII()) }

// BenchmarkFigure7bPentium4 regenerates Figure 7(b) and (d) on the
// Pentium-IV-like machine (the ART strict-aliasing headline).
func BenchmarkFigure7bPentium4(b *testing.B) { benchmarkFigure7(b, machine.PentiumIV()) }

// --- Figure 7 (c)/(d) focused: tuning-time ratio of one benchmark ------------

func benchmarkTuningTime(b *testing.B, m *machine.Machine, name string, method core.Method) {
	bm, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("missing %s", name)
	}
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		p, err := ProfileBenchmark(bm, m)
		if err != nil {
			b.Fatal(err)
		}
		forced := method
		tu := &core.Tuner{Bench: bm, Mach: m, Dataset: bm.Train, Cfg: cfg, Profile: p, Force: &forced}
		res, err := tu.Tune()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TuningCycles), "tuningCycles")
		b.ReportMetric(float64(res.ProgramRuns), "programRuns")
	}
}

// BenchmarkFigure7cTuningTimeSPARC measures the Figure-7(c) contrast on one
// benchmark: MGRID tuned with the consultant's MBR choice.
func BenchmarkFigure7cTuningTimeSPARC(b *testing.B) {
	benchmarkTuningTime(b, machine.SPARCII(), "MGRID", core.MethodMBR)
}

// BenchmarkFigure7dTuningTimeP4 measures the Figure-7(d) contrast on one
// benchmark: SWIM tuned with RBR (the expensive wrong choice on P4).
func BenchmarkFigure7dTuningTimeP4(b *testing.B) {
	benchmarkTuningTime(b, machine.PentiumIV(), "SWIM", core.MethodRBR)
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

// BenchmarkAblationBasicVsImprovedRBR quantifies the cache-preconditioning
// bias the improved RBR method removes (paper §2.4.2): it reports the mean
// rating error of a base==experimental comparison under both variants.
func BenchmarkAblationBasicVsImprovedRBR(b *testing.B) {
	bm, _ := workloads.ByName("MCF")
	m := machine.SPARCII()
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		p, err := ProfileBenchmark(bm, m)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := core.Consistency(bm, m, p, core.MethodRBR, []int{40}, &cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Windows[40].Mu*100, "improvedMu_x100")
	}
}

// --- Substrate microbenchmarks -------------------------------------------------

// BenchmarkSimInterpreter measures raw execution-engine throughput on the
// EQUAKE kernel (cycles simulated per wall-second matter for experiment
// runtimes).
func BenchmarkSimInterpreter(b *testing.B) {
	bm, _ := workloads.ByName("EQUAKE")
	m := machine.PentiumIV()
	v, err := opt.Compile(bm.Prog, bm.TS, opt.O3(), m)
	if err != nil {
		b.Fatal(err)
	}
	mem := sim.NewMemory(bm.Prog)
	runner := sim.NewRunner(m, mem, 1)
	bm.Train.Setup(mem, rand.New(rand.NewSource(1)))
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := runner.Run(v, []float64{48})
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.Instrs
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// BenchmarkCompileO3 measures the optimizing compiler on the biggest
// kernel (ART) at full optimization.
func BenchmarkCompileO3(b *testing.B) {
	bm, _ := workloads.ByName("ART")
	m := machine.PentiumIV()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Compile(bm.Prog, bm.TS, opt.O3(), m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileRun measures the offline profiling pass.
func BenchmarkProfileRun(b *testing.B) {
	bm, _ := workloads.ByName("APSI")
	m := machine.SPARCII()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileBenchmark(bm, m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel tuning --------------------------------------------------------

// BenchmarkParallelSpeedup contrasts a full tune on the serial pool against
// the same tune sharded over an 8-worker pool. The results are
// bit-identical by the internal/sched contract (TestPoolDeterminism
// asserts it); the wall-time ratio only exceeds 1 when GOMAXPROCS allows
// real concurrency — on a single-CPU machine the two run at the same
// speed (EXPERIMENTS.md, "Parallel tuning").
func BenchmarkParallelSpeedup(b *testing.B) {
	bm, _ := workloads.ByName("SWIM")
	m := machine.PentiumIV()
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := NewPool(workers)
			for i := 0; i < b.N; i++ {
				res, err := TuneBenchmarkOn(bm, m, nil, pool)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Invocations), "invocations")
			}
		})
	}
}

// --- Bench smoke ------------------------------------------------------------

// TestBenchSmokeReportsInvocationsPerSec runs the peak-bench CLI for a very
// short window and checks that the report carries the interpreter-throughput
// fields the BENCH_pr*.json history is built from. A bench report without
// invocations_per_sec cannot be compared across PRs, so its absence is a
// regression in its own right.
func TestBenchSmokeReportsInvocationsPerSec(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	cmd := exec.Command(goBin, "run", "./cmd/peak-bench", "-mintime", "0.05", "-o", out)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("peak-bench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		InvocationsPerSec    float64 `json:"invocations_per_sec"`
		InvocationsPerSecRef float64 `json:"invocations_per_sec_ref"`
		CompileSpeedup       float64 `json:"compile_speedup"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse %s: %v", out, err)
	}
	if rep.InvocationsPerSec <= 0 {
		t.Errorf("invocations_per_sec = %v, want > 0", rep.InvocationsPerSec)
	}
	if rep.InvocationsPerSecRef <= 0 {
		t.Errorf("invocations_per_sec_ref = %v, want > 0", rep.InvocationsPerSecRef)
	}
	if rep.CompileSpeedup < 2 {
		t.Errorf("compile_speedup = %v, want >= 2", rep.CompileSpeedup)
	}
}
