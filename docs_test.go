package peak

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocsPresent enforces the documentation floor: every package in
// the module — the facade, every internal package and every command — must
// carry a godoc package comment. It runs as part of the tier-1 recipe
// (ROADMAP.md) so an undocumented package fails CI, not review.
func TestPackageDocsPresent(t *testing.T) {
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no godoc package comment", name, dir)
			}
		}
	}
	if len(seen) < 15 {
		t.Fatalf("only %d package dirs scanned — walk is broken", len(seen))
	}
}

// TestTraceExportedDocsPresent holds the observability layer to a
// stricter floor than the package-comment rule: every exported
// declaration of internal/trace — each event kind and metric kind
// constant, every type, function and method — must carry its own doc
// comment, and every exported field of the Event struct must too,
// because OBSERVABILITY.md's event-schema reference is written against
// those comments and silently drifts when they go missing.
func TestTraceExportedDocsPresent(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join("internal", "trace"), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	documented := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g != nil && strings.TrimSpace(g.Text()) != "" {
				return true
			}
		}
		return false
	}
	checked := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					checked++
					if !documented(d.Doc) {
						t.Errorf("%s: exported %s has no doc comment",
							fset.Position(d.Pos()), d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							checked++
							if !documented(d.Doc, s.Doc, s.Comment) {
								t.Errorf("%s: exported type %s has no doc comment",
									fset.Position(s.Pos()), s.Name.Name)
							}
							// The Event struct is the wire schema: every
							// exported field needs its own comment.
							if s.Name.Name != "Event" {
								continue
							}
							st, ok := s.Type.(*ast.StructType)
							if !ok {
								t.Errorf("Event is not a struct")
								continue
							}
							for _, fld := range st.Fields.List {
								for _, nm := range fld.Names {
									if !nm.IsExported() {
										continue
									}
									checked++
									if !documented(fld.Doc, fld.Comment) {
										t.Errorf("%s: Event field %s has no doc comment",
											fset.Position(nm.Pos()), nm.Name)
									}
								}
							}
						case *ast.ValueSpec:
							for _, nm := range s.Names {
								if !nm.IsExported() {
									continue
								}
								checked++
								if !documented(d.Doc, s.Doc, s.Comment) {
									t.Errorf("%s: exported %s has no doc comment",
										fset.Position(nm.Pos()), nm.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	// 14 event kinds + the Event fields alone clear this floor; a low
	// count means the parse silently matched nothing.
	if checked < 40 {
		t.Fatalf("only %d exported declarations checked — parse is broken", checked)
	}
}

// TestResilienceExportedDocsPresent extends the strict per-declaration
// floor of TestTraceExportedDocsPresent to the service-resilience layer:
// every exported type, function, method and constant of internal/serve
// and internal/chaos must carry its own doc comment. The serve package
// is the operational surface (states, stats, breaker phases appear in
// JSON responses and runbooks) and the chaos package is the proof of the
// resilience contract — both drift silently without this check.
func TestResilienceExportedDocsPresent(t *testing.T) {
	documented := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g != nil && strings.TrimSpace(g.Text()) != "" {
				return true
			}
		}
		return false
	}
	checked := 0
	for _, dir := range []string{
		filepath.Join("internal", "serve"),
		filepath.Join("internal", "chaos"),
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() {
							continue
						}
						checked++
						if !documented(d.Doc) {
							t.Errorf("%s: exported %s has no doc comment",
								fset.Position(d.Pos()), d.Name.Name)
						}
					case *ast.GenDecl:
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if !s.Name.IsExported() {
									continue
								}
								checked++
								if !documented(d.Doc, s.Doc, s.Comment) {
									t.Errorf("%s: exported type %s has no doc comment",
										fset.Position(s.Pos()), s.Name.Name)
								}
							case *ast.ValueSpec:
								for _, nm := range s.Names {
									if !nm.IsExported() {
										continue
									}
									checked++
									if !documented(d.Doc, s.Doc, s.Comment) {
										t.Errorf("%s: exported %s has no doc comment",
											fset.Position(nm.Pos()), nm.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	// Job states + breaker phases + the Server/Options/Stats/Config/Report
	// surfaces alone clear this; a low count means the parse matched nothing.
	if checked < 25 {
		t.Fatalf("only %d exported declarations checked — parse is broken", checked)
	}
}

// TestStoreExportedDocsPresent extends the strict per-declaration floor
// to the persistent warm-start store: every exported type, function,
// method and constant of internal/store must carry its own doc comment.
// The store is a durability surface — its on-disk format, recovery
// semantics and stats fields appear in /stats JSON and in the
// ARCHITECTURE.md §3 contract — and those docs drift silently without
// this check.
func TestStoreExportedDocsPresent(t *testing.T) {
	documented := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g != nil && strings.TrimSpace(g.Text()) != "" {
				return true
			}
		}
		return false
	}
	checked := 0
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join("internal", "store"), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					checked++
					if !documented(d.Doc) {
						t.Errorf("%s: exported %s has no doc comment",
							fset.Position(d.Pos()), d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							checked++
							if !documented(d.Doc, s.Doc, s.Comment) {
								t.Errorf("%s: exported type %s has no doc comment",
									fset.Position(s.Pos()), s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, nm := range s.Names {
								if !nm.IsExported() {
									continue
								}
								checked++
								if !documented(d.Doc, s.Doc, s.Comment) {
									t.Errorf("%s: exported %s has no doc comment",
										fset.Position(nm.Pos()), nm.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	// Store, Stats, RecoveryReport and the Open/Flush/memo surfaces alone
	// clear this floor; a low count means the parse matched nothing.
	if checked < 10 {
		t.Fatalf("only %d exported declarations checked — parse is broken", checked)
	}
}

// TestWarmStartDocsCrossReferenced pins the warm-start documentation to
// the code it describes: the handbooks must keep naming the persistent
// store's tier-1 check, flags and /stats surfaces, so a rename shows up
// here instead of leaving the docs describing a store that no longer
// exists.
func TestWarmStartDocsCrossReferenced(t *testing.T) {
	for file, wants := range map[string][]string{
		"ROADMAP.md": {
			"./internal/store/", // tier-1 -race list
			"-cache-dir",        // warm-start spot-check recipe
			"memo_speedup",
			"BENCH_pr10.json",
		},
		"OBSERVABILITY.md": {
			"tier", // cache/rate event provenance field
			"disk_hits",
			"restored_jobs",
			"flush_error",
		},
		"ARCHITECTURE.md": {
			"persistent store",
			"LookupMemo",
			"Never memoize under faults",
			"AttachCache",
		},
		"README.md": {
			"-cache-dir",
			"-warmstart",
		},
		"EXPERIMENTS.md": {
			"Warm-start tuning",
			"serve_sim_cycles",
		},
	} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, want := range wants {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s no longer mentions %q — warm-start docs drifted", file, want)
			}
		}
	}
}

// TestResilienceDocsCrossReferenced pins the documentation satellites to
// the code they describe: the operational docs must keep naming the
// tier-1 chaos check and the resilience surfaces, so a future rename or
// deletion shows up here instead of leaving the handbooks describing
// endpoints that no longer exist.
func TestResilienceDocsCrossReferenced(t *testing.T) {
	for file, wants := range map[string][]string{
		"ROADMAP.md": {
			"./internal/chaos/",         // tier-1 -race list
			"peak-chaos -smoke -seed 1", // chaos smoke recipe
		},
		"OBSERVABILITY.md": {
			"Resilience",      // §6 heading
			"watchdog_stalls", // /stats surfaces
			"journal_recovery",
			"retry_after_seconds",
			"half_open", // breaker states are wire values
			"deadline_ms",
		},
		"ARCHITECTURE.md": {
			"CRC-framed", // crash-safe journal contract
			"RecoveryReport",
			"peak-chaos",
			"-watchdog",
		},
		"README.md": {
			"peak-chaos",
			"-deadline",
			"-breaker-failures",
		},
	} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, want := range wants {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s no longer mentions %q — resilience docs drifted", file, want)
			}
		}
	}
}
