package peak

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocsPresent enforces the documentation floor: every package in
// the module — the facade, every internal package and every command — must
// carry a godoc package comment. It runs as part of the tier-1 recipe
// (ROADMAP.md) so an undocumented package fails CI, not review.
func TestPackageDocsPresent(t *testing.T) {
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no godoc package comment", name, dir)
			}
		}
	}
	if len(seen) < 15 {
		t.Fatalf("only %d package dirs scanned — walk is broken", len(seen))
	}
}
