// Command peak-consistency regenerates the paper's Table 1: the rating
// consistency (mean and standard deviation of rating errors, ×100) of the
// consultant-chosen method for every benchmark, across window sizes
// w = 10, 20, 40, 80, 160.
//
// Usage:
//
//	peak-consistency [-machine sparc2] [-noise spikes] [-workers 8] [-progress]
//	peak-consistency -trace t1.jsonl -metrics   # record cell events + counters
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"peak"
	"peak/internal/cli"
	"peak/internal/experiments"
	"peak/internal/sched"
)

func main() {
	machName := flag.String("machine", "sparc2", `machine: "sparc2" or "p4"`)
	noiseName := flag.String("noise", "", "noise regime (baseline, gauss4x, spikes, drift, bursts); empty = machine default")
	workers := flag.Int("workers", 1, "parallel workers (0 = GOMAXPROCS); any value gives identical output")
	progress := flag.Bool("progress", false, "print live scheduler status and a final utilization summary")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (analyze with peak-trace)")
	metrics := flag.Bool("metrics", false, "print the metrics table to stderr after the run")
	flag.Parse()

	m, ok := peak.MachineByName(*machName)
	if !ok {
		fmt.Fprintf(os.Stderr, "peak-consistency: unknown machine %q\n", *machName)
		os.Exit(1)
	}
	cfg := peak.DefaultConfig()
	if *noiseName != "" {
		regime, ok := peak.NoiseRegimeByName(m, *noiseName)
		if !ok {
			fmt.Fprintf(os.Stderr, "peak-consistency: unknown noise regime %q\n", *noiseName)
			os.Exit(1)
		}
		cfg.Noise = &regime.Model
	}
	pool := peak.NewPool(*workers)
	stopProgress := func() {}
	if *progress {
		stopProgress = sched.StartProgress(os.Stderr, pool, time.Second)
	}
	obs := cli.NewObserver(*tracePath, *metrics, os.Stderr)
	// Flush the partial trace on SIGINT/SIGTERM instead of losing it.
	obs.FlushOnInterrupt(os.Stderr, "peak-consistency", nil)
	rows, err := peak.Table1Traced(m, &cfg, pool, obs.Buf, obs.Mx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peak-consistency: %v\n", err)
		if len(rows) > 0 {
			fmt.Fprintf(os.Stderr, "peak-consistency: flushing %d partial row(s)\n", len(rows))
			fmt.Print(experiments.FormatTable1(rows, experiments.PaperWindows))
		}
		obs.Flush()
		os.Exit(1)
	}
	fmt.Printf("Table 1: consistency of rating approaches on %s\n", m.Name)
	fmt.Println("(numbers are Mean(StdDev) of the rating error, multiplied by 100)")
	fmt.Print(experiments.FormatTable1(rows, experiments.PaperWindows))
	stopProgress()
	if *progress {
		fmt.Fprintln(os.Stderr, pool.Stats().Summary(pool.Workers()))
	}
	pool.Stats().FillMetrics(obs.Mx, pool.Workers())
	if err := obs.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "peak-consistency: trace: %v\n", err)
		os.Exit(1)
	}
}
