// Command peak-consistency regenerates the paper's Table 1: the rating
// consistency (mean and standard deviation of rating errors, ×100) of the
// consultant-chosen method for every benchmark, across window sizes
// w = 10, 20, 40, 80, 160.
//
// Usage:
//
//	peak-consistency [-machine sparc2]
package main

import (
	"flag"
	"fmt"
	"os"

	"peak"
	"peak/internal/experiments"
)

func main() {
	machName := flag.String("machine", "sparc2", `machine: "sparc2" or "p4"`)
	flag.Parse()

	m, ok := peak.MachineByName(*machName)
	if !ok {
		fmt.Fprintf(os.Stderr, "peak-consistency: unknown machine %q\n", *machName)
		os.Exit(1)
	}
	rows, err := peak.Table1(m, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peak-consistency: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Table 1: consistency of rating approaches on %s\n", m.Name)
	fmt.Println("(numbers are Mean(StdDev) of the rating error, multiplied by 100)")
	fmt.Print(experiments.FormatTable1(rows, experiments.PaperWindows))
}
