// Command peak tunes one workload benchmark on a simulated machine with the
// PEAK engine and reports the winning flag combination and its measured
// improvement over "-O3".
//
// Usage:
//
//	peak -bench ART -machine p4 [-method RBR] [-dataset train] [-workers 8] [-v]
//	peak -bench SWIM -noise spikes    # tune under a stress noise regime
//	peak -bench ART -trace art.jsonl  # record a trace (analyze: peak-trace)
//	peak -bench ART -metrics          # print the metrics table to stderr
//	peak -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"peak"
	"peak/internal/cli"
	"peak/internal/opt"
	"peak/internal/sched"
)

func main() {
	var (
		benchName = flag.String("bench", "ART", "benchmark name (see -list)")
		machName  = flag.String("machine", "p4", `machine: "sparc2" or "p4"`)
		method    = flag.String("method", "", "force rating method (CBR, MBR, RBR, AVG, WHL); empty = consultant choice")
		dataset   = flag.String("dataset", "train", `tuning dataset: "train" or "ref"`)
		noiseName = flag.String("noise", "", "noise regime (baseline, gauss4x, spikes, drift, bursts); empty = machine default")
		workers   = flag.Int("workers", 1, "parallel rating workers (0 = GOMAXPROCS); any value gives identical results")
		progress  = flag.Bool("progress", false, "print live scheduler status and a final utilization summary")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		listFlags = flag.Bool("list-flags", false, "list the 38 tunable optimization flags and exit")
		noCache   = flag.Bool("nocache", false, "disable the compile cache (output is byte-identical either way)")
		faults    = flag.Bool("faults", false, "tune under injected faults (compile failures, miscompiles, hangs, panics)")
		faultRate = flag.Float64("faultrate", 0.05, "uniform fault rate for -faults (miscompiles injected at rate/10)")
		faultSeed = flag.Int64("faultseed", 2023, "fault-injection seed for -faults")
		tracePath = flag.String("trace", "", "write a JSONL event trace of the tune to this file (analyze with peak-trace)")
		metrics   = flag.Bool("metrics", false, "print the metrics table to stderr after the tune")
		verbose   = flag.Bool("v", false, "print profile and consultant details")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available benchmarks (paper Table 1):")
		for _, b := range peak.Benchmarks() {
			fmt.Printf("  %-8s %-18s %s  (paper: %s invocations)\n",
				b.Name, b.TSName, b.Class, b.PaperInvocations)
		}
		return
	}
	if *listFlags {
		fmt.Println("The 38 -O3 optimization flags PEAK tunes (GCC 3.3 names):")
		for _, f := range opt.AllFlags() {
			fmt.Printf("  -f%-26s %s\n", f.String(), opt.FlagDoc(f))
		}
		return
	}

	b, ok := peak.BenchmarkByName(*benchName)
	if !ok {
		fatalf("unknown benchmark %q (try -list)", *benchName)
	}
	m, ok := peak.MachineByName(*machName)
	if !ok {
		fatalf("unknown machine %q", *machName)
	}
	ds := b.Train
	if *dataset == "ref" {
		ds = b.Ref
	}

	cfg := peak.DefaultConfig()
	cfg.NoCompileCache = *noCache
	if *faults {
		cfg.Faults = peak.UniformFaults(*faultRate, *faultSeed)
	}
	if *noiseName != "" {
		regime, ok := peak.NoiseRegimeByName(m, *noiseName)
		if !ok {
			fatalf("unknown noise regime %q", *noiseName)
		}
		cfg.Noise = &regime.Model
	}
	prof, err := peak.ProfileBenchmark(b, m)
	if err != nil {
		fatalf("profile: %v", err)
	}
	app := peak.Consult(prof, &cfg)
	if *verbose {
		fmt.Printf("profile: %d invocations, %d contexts (dominant share %.1f%%), mean %.0f cycles\n",
			prof.Invocations, prof.NumContexts(), 100*prof.DominantShare(), prof.MeanCycles)
		if prof.Model != nil {
			fmt.Printf("model: %d components, profile fit VAR %.4f\n",
				len(prof.Model.Components), prof.ModelVar)
		}
		fmt.Printf("consultant: applicable methods %s", app)
		if app.CBRReason != "" {
			fmt.Printf(" (CBR rejected: %s)", app.CBRReason)
		}
		if app.MBRReason != "" {
			fmt.Printf(" (MBR rejected: %s)", app.MBRReason)
		}
		fmt.Println()
	}

	pool := peak.NewPool(*workers)
	stopProgress := func() {}
	if *progress {
		stopProgress = sched.StartProgress(os.Stderr, pool, time.Second)
	}
	obs := cli.NewObserver(*tracePath, *metrics, os.Stderr)
	// A SIGINT mid-tune flushes the events recorded so far instead of
	// losing the whole buffer (Observer.Flush is idempotent, so the normal
	// exit path below stays a no-op after an interrupt-time flush).
	obs.FlushOnInterrupt(os.Stderr, "peak", nil)

	var res *peak.TuneResult
	if *method == "" {
		res, err = peak.TuneBenchmarkTraced(b, m, &cfg, pool, nil, obs.Buf, obs.Mx)
	} else {
		mm, ok := peak.ParseMethodName(*method)
		if !ok {
			fatalf("unknown method %q", *method)
		}
		res, err = peak.TuneWithMethodTraced(b, m, mm, ds, &cfg, pool, obs.Buf, obs.Mx)
	}
	if err != nil {
		fatalf("tune: %v", err)
	}
	stopProgress()
	if *progress {
		fmt.Fprintln(os.Stderr, pool.Stats().Summary(pool.Workers()))
	}
	pool.Stats().FillMetrics(obs.Mx, pool.Workers())
	if err := obs.Flush(); err != nil {
		fatalf("trace: %v", err)
	}

	base, _, err := peak.Measure(b, b.Ref, m, peak.O3())
	if err != nil {
		fatalf("measure base: %v", err)
	}
	tuned, _, err := peak.Measure(b, b.Ref, m, res.Best)
	if err != nil {
		fatalf("measure tuned: %v", err)
	}
	// The report block is rendered by the same function peak-serve uses
	// for its job reports, keeping the two byte-identical for the same
	// arguments (the serve smoke check relies on this).
	fmt.Print(cli.FormatTuneReport(b, m, res, *faults, base, tuned))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peak: "+format+"\n", args...)
	os.Exit(1)
}
