// Command peak-trace analyzes a JSONL event trace recorded with the
// -trace flag of peak, peak-consistency or peak-experiments. It prints
// two digests per tuning process in the trace:
//
//   - a time-breakdown table ("Where tuning time goes"): total simulated
//     tuning cycles decomposed into rating, fault-retry, verification and
//     overhead shares, plus compile-cache, dedup and search counts;
//   - a per-flag elimination timeline: for every Iterative Elimination
//     round, the candidates entering it, the ratings it spent, and which
//     flag it removed at what gated improvement.
//
// Events outside a tuning process (grid cells, winner trials, peak-bench
// wall-clock phases) are ignored; OBSERVABILITY.md's cookbook walks
// through reading both digests.
//
// Usage:
//
//	peak -bench ART -machine p4 -trace art.jsonl && peak-trace art.jsonl
//	peak-trace -breakdown fig7.jsonl    # time table only
//	peak-trace -timeline fig7.jsonl     # timelines only
//	peak-trace -                        # read the trace from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"peak/internal/trace"
)

func main() {
	breakdown := flag.Bool("breakdown", false, "print only the time-breakdown table")
	timeline := flag.Bool("timeline", false, "print only the elimination timelines")
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: peak-trace [-breakdown|-timeline] <trace.jsonl | ->")
	}

	var r io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadEvents(r)
	if err != nil {
		fatalf("%v", err)
	}
	a := trace.Analyze(events)
	if len(a.Breakdowns) == 0 {
		fmt.Printf("no tuning processes in trace (%d events)\n", len(events))
		return
	}

	// Both flags unset means both digests, matching the usual "give me
	// everything" invocation.
	both := *breakdown == *timeline
	if both || *breakdown {
		fmt.Print(trace.FormatBreakdown(a.Breakdowns))
	}
	if both || *timeline {
		if both {
			fmt.Println()
		}
		fmt.Print(trace.FormatTimeline(a.Timelines))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peak-trace: "+format+"\n", args...)
	os.Exit(1)
}
