// Command peak-bench measures the tuning-throughput numbers reported in
// EXPERIMENTS.md ("Tuning throughput"): the cost of a compile-cache hit
// versus a cold compilation, the simulator's invocation throughput on the
// decoded-plan fast path, and the end-to-end wall time of the Table-1
// consistency experiment. It emits one JSON object (BENCH_pr3.json in the
// repository was produced by it; the documented command is recorded in the
// output itself).
//
// Usage:
//
//	peak-bench                                  # compile + simulator numbers
//	peak-bench -table1                          # also time Table 1 end to end
//	peak-bench -table1 -baseline-table1-ns N    # embed a pre-change baseline
//	peak-bench -o BENCH_pr3.json                # write instead of stdout
//	peak-bench -trace bench.jsonl               # wall-clock phase events
//
// The -trace output records wall-clock "bench_phase" events — the one
// documented exemption from the repository's trace determinism contract
// (OBSERVABILITY.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"peak/internal/cli"
	"peak/internal/core"
	"peak/internal/experiments"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/sim"
	"peak/internal/trace"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// report is the BENCH_pr3.json schema.
type report struct {
	Command string `json:"command"`
	Bench   string `json:"bench"`
	Machine string `json:"machine"`

	// Compile cache: ns per cold compilation (no cache, every call runs
	// the optimizer) vs ns per cached lookup of the same flag sets.
	CompileColdNsOp   int64   `json:"compile_cold_ns_op"`
	CompileCachedNsOp int64   `json:"compile_cached_ns_op"`
	CompileSpeedup    float64 `json:"compile_speedup"`
	CompileFlagSets   int     `json:"compile_flag_sets"`

	// Simulator fast path: TS invocations per second and ns per invocation
	// for the -O3 version of the selected benchmark.
	InvocationsPerSec float64 `json:"invocations_per_sec"`
	InvocationNsOp    int64   `json:"invocation_ns_op"`
	InvocationCycles  int64   `json:"invocation_cycles"`

	// End-to-end: wall time of the Table-1 consistency experiment on the
	// selected machine (serial, all 14 benchmarks), plus the pre-change
	// baseline and speedup when -baseline-table1-ns is given.
	Table1WallNs         int64   `json:"table1_wall_ns,omitempty"`
	Table1BaselineWallNs int64   `json:"table1_baseline_wall_ns,omitempty"`
	Table1Speedup        float64 `json:"table1_speedup,omitempty"`
}

func main() {
	var (
		benchName  = flag.String("bench", "SWIM", "benchmark for the compile and simulator measurements")
		machName   = flag.String("machine", "sparc2", `machine: "sparc2" or "p4"`)
		out        = flag.String("o", "", "write the JSON report to this file (default stdout)")
		runTable1  = flag.Bool("table1", false, "also run the Table-1 experiment end to end (seconds)")
		baseNs     = flag.Int64("baseline-table1-ns", 0, "pre-change Table-1 wall time to embed for comparison")
		minSeconds = flag.Float64("mintime", 1.0, "minimum seconds per timed section")
		tracePath  = flag.String("trace", "", "write wall-clock bench_phase events to this JSONL file")
		metrics    = flag.Bool("metrics", false, "print the measured numbers as a metrics table to stderr")
	)
	flag.Parse()

	b, ok := workloads.ByName(*benchName)
	if !ok {
		fatalf("unknown benchmark %q", *benchName)
	}
	m, ok := machine.ByName(*machName)
	if !ok {
		fatalf("unknown machine %q", *machName)
	}
	r := report{
		Command: "peak-bench " + strings.Join(os.Args[1:], " "),
		Bench:   b.Name, Machine: m.Name,
	}
	obs := cli.NewObserver(*tracePath, *metrics, os.Stderr)
	// Flush the phases recorded so far on SIGINT/SIGTERM instead of
	// losing them (the bench sections can run for minutes).
	obs.FlushOnInterrupt(os.Stderr, "peak-bench", nil)
	// phase records one timed section as a wall-clock bench_phase event
	// (Count = elapsed nanoseconds, Invocations = operations) — outside
	// the determinism contract by design.
	phase := func(name string, elapsedNs, ops int64) {
		obs.Buf.Emit(trace.Event{Kind: trace.KindBenchPhase,
			Detail: name, Count: elapsedNs, Invocations: ops})
	}

	// The flag-set population a tuning round touches: -O3 plus every
	// one-flag-off candidate.
	flagSets := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags() {
		flagSets = append(flagSets, opt.O3().Without(f))
	}
	r.CompileFlagSets = len(flagSets)

	// Cold: every call compiles. The inner loop re-runs the whole
	// population so both sections do work proportional to len(flagSets).
	coldOps := 0
	coldStart := time.Now()
	for time.Since(coldStart).Seconds() < *minSeconds {
		for _, fs := range flagSets {
			if _, err := opt.Compile(b.Prog, b.TS, fs, m); err != nil {
				fatalf("compile %s: %v", fs, err)
			}
			coldOps++
		}
	}
	coldNs := time.Since(coldStart).Nanoseconds()
	r.CompileColdNsOp = coldNs / int64(coldOps)
	phase("compile_cold", coldNs, int64(coldOps))

	// Cached: warm the cache with one pass, then time pure hits.
	cache := vcache.New()
	pk := vcache.ProgramKey(b.Prog)
	lookup := func(fs opt.FlagSet) {
		_, _, _, err := cache.GetOrCompile(
			vcache.Key{Prog: pk, Fn: b.TSName, Flags: fs, Machine: m.Name},
			func() (*sim.Version, error) { return opt.Compile(b.Prog, b.TS, fs, m) })
		if err != nil {
			fatalf("cached compile %s: %v", fs, err)
		}
	}
	for _, fs := range flagSets {
		lookup(fs)
	}
	cachedOps := 0
	cachedStart := time.Now()
	for time.Since(cachedStart).Seconds() < *minSeconds {
		for _, fs := range flagSets {
			lookup(fs)
			cachedOps++
		}
	}
	cachedNs := time.Since(cachedStart).Nanoseconds()
	r.CompileCachedNsOp = cachedNs / int64(cachedOps)
	phase("compile_cached", cachedNs, int64(cachedOps))
	if r.CompileCachedNsOp > 0 {
		r.CompileSpeedup = float64(r.CompileColdNsOp) / float64(r.CompileCachedNsOp)
	}

	// Simulator throughput: repeated invocations of the -O3 version through
	// one runner (plans decoded once, the tuning steady state).
	v, err := opt.Compile(b.Prog, b.TS, opt.O3(), m)
	if err != nil {
		fatalf("compile -O3: %v", err)
	}
	mem := sim.NewMemory(b.Prog)
	rng := rand.New(rand.NewSource(b.Seed(31)))
	if b.Train.Setup != nil {
		b.Train.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, 1)
	args := b.Train.Args(0, mem, rng)
	invOps := 0
	invStart := time.Now()
	for time.Since(invStart).Seconds() < *minSeconds {
		_, st, err := runner.Run(v, args)
		if err != nil {
			fatalf("run: %v", err)
		}
		r.InvocationCycles = st.Cycles
		invOps++
	}
	invNs := time.Since(invStart).Nanoseconds()
	r.InvocationNsOp = invNs / int64(invOps)
	r.InvocationsPerSec = float64(invOps) / (float64(invNs) / 1e9)
	phase("simulate", invNs, int64(invOps))

	if *runTable1 {
		cfg := core.DefaultConfig()
		t0 := time.Now()
		if _, err := experiments.Table1(m, experiments.PaperWindows, &cfg); err != nil {
			fatalf("table1: %v", err)
		}
		r.Table1WallNs = time.Since(t0).Nanoseconds()
		phase("table1", r.Table1WallNs, 1)
		if *baseNs > 0 {
			r.Table1BaselineWallNs = *baseNs
			r.Table1Speedup = float64(*baseNs) / float64(r.Table1WallNs)
		}
	}

	if obs.Mx != nil {
		obs.Mx.Gauge("bench.compile_cold_ns_op", r.CompileColdNsOp)
		obs.Mx.Gauge("bench.compile_cached_ns_op", r.CompileCachedNsOp)
		obs.Mx.Gauge("bench.invocation_ns_op", r.InvocationNsOp)
		if r.Table1WallNs > 0 {
			obs.Mx.Gauge("bench.table1_wall_ns", r.Table1WallNs)
		}
	}
	if err := obs.Flush(); err != nil {
		fatalf("trace: %v", err)
	}

	enc, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peak-bench: "+format+"\n", args...)
	os.Exit(1)
}
