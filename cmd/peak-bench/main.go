// Command peak-bench measures the tuning-throughput numbers reported in
// EXPERIMENTS.md ("Tuning throughput"): the cost of a compile-cache hit
// versus a cold compilation, the simulator's invocation throughput on the
// decoded-plan fast path, and the end-to-end wall time of the Table-1
// consistency experiment. It emits one JSON object (BENCH_pr3.json in the
// repository was produced by it; the documented command is recorded in the
// output itself).
//
// Usage:
//
//	peak-bench                                  # compile + simulator numbers
//	peak-bench -table1                          # also time Table 1 end to end
//	peak-bench -table1 -baseline-table1-ns N    # embed a pre-change baseline
//	peak-bench -o BENCH_pr3.json                # write instead of stdout
//	peak-bench -trace bench.jsonl               # wall-clock phase events
//
// The -trace output records wall-clock "bench_phase" events — the one
// documented exemption from the repository's trace determinism contract
// (OBSERVABILITY.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"peak/internal/bench"
	"peak/internal/cli"
	"peak/internal/core"
	"peak/internal/experiments"
	"peak/internal/ir"
	"peak/internal/irbuild"
	"peak/internal/machine"
	"peak/internal/opt"
	"peak/internal/profiling"
	"peak/internal/sched"
	"peak/internal/serve"
	"peak/internal/sim"
	"peak/internal/store"
	"peak/internal/trace"
	"peak/internal/vcache"
	"peak/internal/workloads"
)

// report is the BENCH_pr3.json schema.
type report struct {
	Command string `json:"command"`
	Bench   string `json:"bench"`
	Machine string `json:"machine"`

	// Compile cache: ns per cold compilation (no cache, every call runs
	// the optimizer) vs ns per cached lookup of the same flag sets.
	CompileColdNsOp   int64   `json:"compile_cold_ns_op"`
	CompileCachedNsOp int64   `json:"compile_cached_ns_op"`
	CompileSpeedup    float64 `json:"compile_speedup"`
	CompileFlagSets   int     `json:"compile_flag_sets"`

	// Simulator fast path: TS invocations per second and ns per invocation
	// for the -O3 version of the selected benchmark on the default (fused
	// superblock) engine, plus the same measurement on the reference
	// interpreter and their ratio. Both engines run interleaved in one
	// process, alternating timed windows, so external load (hypervisor
	// steal) hits both alike; the speedup is the ratio of the best windows.
	InvocationsPerSec    float64 `json:"invocations_per_sec"`
	InvocationNsOp       int64   `json:"invocation_ns_op"`
	InvocationCycles     int64   `json:"invocation_cycles"`
	InvocationsPerSecRef float64 `json:"invocations_per_sec_ref"`
	SimSpeedup           float64 `json:"sim_speedup"`

	// Micro holds the per-opcode-class engine microbenchmarks (-micro).
	Micro []microReport `json:"micro,omitempty"`

	// End-to-end: wall time of the Table-1 consistency experiment on the
	// selected machine (serial, all 14 benchmarks), plus the pre-change
	// baseline and speedup when -baseline-table1-ns is given.
	Table1WallNs         int64   `json:"table1_wall_ns,omitempty"`
	Table1BaselineWallNs int64   `json:"table1_baseline_wall_ns,omitempty"`
	Table1Speedup        float64 `json:"table1_speedup,omitempty"`

	// WarmStart holds the persistent-store warm-start measurements (-warmstart).
	WarmStart *warmStartReport `json:"warm_start,omitempty"`
}

// warmStartReport is the -warmstart section: the same full tune run cold
// (empty store) and memo-warm (reopened after a flush, every rating
// answered from the memo table), plus a disk-warm peak-serve restart
// answering a duplicate spec from a restored job artifact.
type warmStartReport struct {
	// ColdTuneNs and MemoWarmTuneNs are one full consultant-path tune's
	// wall time against an empty store and against the reopened flushed
	// store; MemoSpeedup is their ratio (the warm tune simulates nothing —
	// MemoHits ratings answered from disk, MemoMisses must be 0).
	ColdTuneNs     int64   `json:"cold_tune_ns"`
	MemoWarmTuneNs int64   `json:"memo_warm_tune_ns"`
	MemoSpeedup    float64 `json:"memo_speedup"`
	MemoHits       int64   `json:"memo_hits"`
	MemoMisses     int64   `json:"memo_misses"`

	// ServeColdJobNs is the wall time of one peak-serve job run cold with a
	// store attached; ServeRestartNs the time for a rebooted server (same
	// store directory) to boot, restore the finished job and answer the
	// duplicate spec. ServeSimCycles is the warm server's simulated-cycle
	// ledger while doing so — zero means the answer came entirely from the
	// restored artifact.
	ServeColdJobNs    int64 `json:"serve_cold_job_ns"`
	ServeRestartNs    int64 `json:"serve_restart_ns"`
	ServeRestoredJobs int64 `json:"serve_restored_jobs"`
	ServeSimCycles    int64 `json:"serve_sim_cycles"`
}

// microReport is one per-opcode-class engine microbenchmark: the fused and
// reference engines executing the same synthetic kernel, interleaved.
type microReport struct {
	Class        string  `json:"class"`
	InstrsPerInv int64   `json:"instrs_per_invocation"`
	FusedNsOp    int64   `json:"fused_ns_op"`
	RefNsOp      int64   `json:"ref_ns_op"`
	Speedup      float64 `json:"speedup"`
}

func main() {
	var (
		benchName  = flag.String("bench", "SWIM", "benchmark for the compile and simulator measurements")
		machName   = flag.String("machine", "sparc2", `machine: "sparc2" or "p4"`)
		out        = flag.String("o", "", "write the JSON report to this file (default stdout)")
		runTable1  = flag.Bool("table1", false, "also run the Table-1 experiment end to end (seconds)")
		baseNs     = flag.Int64("baseline-table1-ns", 0, "pre-change Table-1 wall time to embed for comparison")
		minSeconds = flag.Float64("mintime", 1.0, "minimum seconds per timed section")
		tracePath  = flag.String("trace", "", "write wall-clock bench_phase events to this JSONL file")
		metrics    = flag.Bool("metrics", false, "print the measured numbers as a metrics table to stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the timed sections to this file")
		micro      = flag.Bool("micro", false, "also run the per-opcode-class engine microbenchmarks")
		warmstart  = flag.Bool("warmstart", false, "also measure warm-start tuning: cold vs memo-warm tune, disk-warm serve restart")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	b, ok := workloads.ByName(*benchName)
	if !ok {
		fatalf("unknown benchmark %q", *benchName)
	}
	m, ok := machine.ByName(*machName)
	if !ok {
		fatalf("unknown machine %q", *machName)
	}
	r := report{
		Command: "peak-bench " + strings.Join(os.Args[1:], " "),
		Bench:   b.Name, Machine: m.Name,
	}
	obs := cli.NewObserver(*tracePath, *metrics, os.Stderr)
	// Flush the phases recorded so far on SIGINT/SIGTERM instead of
	// losing them (the bench sections can run for minutes).
	obs.FlushOnInterrupt(os.Stderr, "peak-bench", nil)
	// phase records one timed section as a wall-clock bench_phase event
	// (Count = elapsed nanoseconds, Invocations = operations) — outside
	// the determinism contract by design.
	phase := func(name string, elapsedNs, ops int64) {
		obs.Buf.Emit(trace.Event{Kind: trace.KindBenchPhase,
			Detail: name, Count: elapsedNs, Invocations: ops})
	}

	// The flag-set population a tuning round touches: -O3 plus every
	// one-flag-off candidate.
	flagSets := []opt.FlagSet{opt.O3()}
	for _, f := range opt.AllFlags() {
		flagSets = append(flagSets, opt.O3().Without(f))
	}
	r.CompileFlagSets = len(flagSets)

	// Cold: every call compiles. The inner loop re-runs the whole
	// population so both sections do work proportional to len(flagSets).
	coldOps := 0
	coldStart := time.Now()
	for time.Since(coldStart).Seconds() < *minSeconds {
		for _, fs := range flagSets {
			if _, err := opt.Compile(b.Prog, b.TS, fs, m); err != nil {
				fatalf("compile %s: %v", fs, err)
			}
			coldOps++
		}
	}
	coldNs := time.Since(coldStart).Nanoseconds()
	r.CompileColdNsOp = coldNs / int64(coldOps)
	phase("compile_cold", coldNs, int64(coldOps))

	// Cached: warm the cache with one pass, then time pure hits.
	cache := vcache.New()
	pk := vcache.ProgramKey(b.Prog)
	lookup := func(fs opt.FlagSet) {
		_, _, _, err := cache.GetOrCompile(
			vcache.Key{Prog: pk, Fn: b.TSName, Flags: fs, Machine: m.Name},
			func() (*sim.Version, error) { return opt.Compile(b.Prog, b.TS, fs, m) })
		if err != nil {
			fatalf("cached compile %s: %v", fs, err)
		}
	}
	for _, fs := range flagSets {
		lookup(fs)
	}
	cachedOps := 0
	cachedStart := time.Now()
	for time.Since(cachedStart).Seconds() < *minSeconds {
		for _, fs := range flagSets {
			lookup(fs)
			cachedOps++
		}
	}
	cachedNs := time.Since(cachedStart).Nanoseconds()
	r.CompileCachedNsOp = cachedNs / int64(cachedOps)
	phase("compile_cached", cachedNs, int64(cachedOps))
	if r.CompileCachedNsOp > 0 {
		r.CompileSpeedup = float64(r.CompileColdNsOp) / float64(r.CompileCachedNsOp)
	}

	// Simulator throughput: repeated invocations of the -O3 version through
	// one runner (plans decoded once, the tuning steady state). Both engines
	// share the runner and alternate timed windows so external load cannot
	// favour one; the headline numbers come from each engine's fused windows,
	// the speedup from the ratio of the best windows (least-disturbed).
	v, err := opt.Compile(b.Prog, b.TS, opt.O3(), m)
	if err != nil {
		fatalf("compile -O3: %v", err)
	}
	mem := sim.NewMemory(b.Prog)
	rng := rand.New(rand.NewSource(b.Seed(31)))
	if b.Train.Setup != nil {
		b.Train.Setup(mem, rng)
	}
	runner := sim.NewRunner(m, mem, 1)
	args := b.Train.Args(0, mem, rng)
	cycles, fused, ref := engineContrast(runner, v, args, *minSeconds)
	r.InvocationCycles = cycles
	r.InvocationNsOp = fused.nsOp()
	r.InvocationsPerSec = fused.opsPerSec()
	r.InvocationsPerSecRef = ref.opsPerSec()
	if ref.bestNsOp > 0 {
		r.SimSpeedup = float64(ref.bestNsOp) / float64(fused.bestNsOp)
	}
	phase("simulate", fused.ns+ref.ns, fused.ops+ref.ops)

	if *micro {
		r.Micro = microBenchmarks(m, *minSeconds, phase)
	}

	if *warmstart {
		r.WarmStart = warmStartBench(b, m, phase)
	}

	if *runTable1 {
		cfg := core.DefaultConfig()
		t0 := time.Now()
		if _, err := experiments.Table1(m, experiments.PaperWindows, &cfg); err != nil {
			fatalf("table1: %v", err)
		}
		r.Table1WallNs = time.Since(t0).Nanoseconds()
		phase("table1", r.Table1WallNs, 1)
		if *baseNs > 0 {
			r.Table1BaselineWallNs = *baseNs
			r.Table1Speedup = float64(*baseNs) / float64(r.Table1WallNs)
		}
	}

	if obs.Mx != nil {
		obs.Mx.Gauge("bench.compile_cold_ns_op", r.CompileColdNsOp)
		obs.Mx.Gauge("bench.compile_cached_ns_op", r.CompileCachedNsOp)
		obs.Mx.Gauge("bench.invocation_ns_op", r.InvocationNsOp)
		if r.Table1WallNs > 0 {
			obs.Mx.Gauge("bench.table1_wall_ns", r.Table1WallNs)
		}
	}
	if err := obs.Flush(); err != nil {
		fatalf("trace: %v", err)
	}

	enc, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

// engineSample accumulates one engine's share of an interleaved measurement:
// total work plus the best (least externally disturbed) window.
type engineSample struct {
	ops, ns   int64
	bestNsOp  int64
	lastCycle int64
}

func (s *engineSample) nsOp() int64 {
	if s.ops == 0 {
		return 0
	}
	return s.ns / s.ops
}

func (s *engineSample) opsPerSec() float64 {
	if s.ns == 0 {
		return 0
	}
	return float64(s.ops) / (float64(s.ns) / 1e9)
}

// engineContrast measures v on both execution engines with alternating timed
// windows over one shared runner, for ~minSeconds total. Interleaving in a
// single process is the only arrangement in which external load (notably
// hypervisor CPU steal on small VMs) perturbs both engines alike; comparing
// each engine's best window then cancels most of what remains.
func engineContrast(runner *sim.Runner, v *sim.Version, args []float64, minSeconds float64) (cycles int64, fused, ref engineSample) {
	const perWindow = 16
	samples := [2]*engineSample{&fused, &ref}
	engines := [2]sim.Engine{sim.EngineFused, sim.EngineRef}
	start := time.Now()
	for w := 0; time.Since(start).Seconds() < minSeconds || w < 2; w++ {
		s := samples[w%2]
		runner.Engine = engines[w%2]
		t0 := time.Now()
		for i := 0; i < perWindow; i++ {
			_, st, err := runner.Run(v, args)
			if err != nil {
				fatalf("run (%s): %v", v.Label, err)
			}
			s.lastCycle = st.Cycles
		}
		ns := time.Since(t0).Nanoseconds()
		s.ops += perWindow
		s.ns += ns
		if nsOp := ns / perWindow; s.bestNsOp == 0 || nsOp < s.bestNsOp {
			s.bestNsOp = nsOp
		}
	}
	runner.Engine = sim.EngineFused
	return fused.lastCycle, fused, ref
}

// microKernel builds one synthetic per-opcode-class kernel. Each stresses a
// different micro-op population: straight-line fusible ALU chains, cache
// accesses, data-dependent branches, or call dispatch.
func microKernel(class string) (*ir.Program, *ir.Func, []float64) {
	prog := ir.NewProgram()
	b := irbuild.NewFunc(class)
	var fn *ir.Func
	var args []float64
	switch class {
	case "alu_superblock":
		// Long straight-line int+FP arithmetic, no memory: the fused
		// engine's best case (whole loop bodies collapse into traces).
		b.ScalarParam("n", ir.I64).Local("s", ir.F64).Local("t", ir.I64).Local("u", ir.F64)
		fn = b.Body(
			b.Set(b.V("s"), b.F(1)),
			b.Set(b.V("t"), b.I(7)),
			b.For("i", b.I(0), b.V("n"), 1,
				b.Set(b.V("s"), b.FAdd(b.FMul(b.V("s"), b.F(1.000001)), b.F(0.25))),
				b.Set(b.V("t"), b.Add(b.Xor(b.V("t"), b.V("i")), b.I(3))),
				b.Set(b.V("u"), b.FSub(b.FMul(b.V("u"), b.F(0.5)), b.V("s"))),
				b.Set(b.V("t"), b.And(b.Add(b.V("t"), b.Shl(b.V("t"), b.I(1))), b.I(4095))),
				b.Set(b.V("s"), b.FAdd(b.V("s"), b.FMul(b.V("u"), b.F(0.125)))),
				b.Set(b.V("t"), b.Or(b.V("t"), b.Shr(b.V("t"), b.I(2)))),
			),
			b.Ret(b.V("s")),
		)
		args = []float64{256}
	case "memory_bound":
		// Streaming loads and stores over arrays larger than L1: dominated
		// by the cache model, which no trace can fuse over.
		prog.AddArray("x", ir.F64, 4096)
		prog.AddArray("y", ir.F64, 4096)
		b.ScalarParam("n", ir.I64).Local("s", ir.F64)
		fn = b.Body(
			b.For("i", b.I(0), b.V("n"), 1,
				b.Set(b.V("s"), b.FAdd(b.V("s"), b.At("x", b.V("i")))),
				b.Set(b.At("y", b.V("i")), b.V("s")),
			),
			b.Ret(b.V("s")),
		)
		args = []float64{4096}
	case "branch_heavy":
		// Short blocks, data-dependent branches: predictor-bound, traces
		// stay below the fusion gate.
		b.ScalarParam("n", ir.I64).Local("s", ir.I64)
		fn = b.Body(
			b.For("i", b.I(0), b.V("n"), 1,
				b.IfElse(b.Eq(b.And(b.V("i"), b.I(3)), b.I(0)),
					b.Stmts(b.Set(b.V("s"), b.Add(b.V("s"), b.V("i")))),
					b.Stmts(b.IfElse(b.Gt(b.V("s"), b.I(512)),
						b.Stmts(b.Set(b.V("s"), b.Sub(b.V("s"), b.I(511)))),
						b.Stmts(b.Set(b.V("s"), b.Add(b.V("s"), b.I(5)))),
					)),
				),
			),
			b.Ret(b.V("s")),
		)
		args = []float64{1024}
	case "call_heavy":
		// Intrinsic and user-function dispatch per iteration.
		cb := irbuild.NewFunc("mix")
		cb.ScalarParam("a", ir.F64).ScalarParam("b", ir.F64)
		callee := cb.Body(cb.Ret(cb.FAdd(cb.FMul(cb.V("a"), cb.V("b")), cb.F(1))))
		prog.AddFunc(callee)
		b.ScalarParam("n", ir.I64).Local("s", ir.F64)
		fn = b.Body(
			b.Set(b.V("s"), b.F(2)),
			b.For("i", b.I(0), b.V("n"), 1,
				b.Set(b.V("s"), b.Call("sqrt", b.Call("mix", b.V("s"), b.F(1.5)))),
				b.Set(b.V("s"), b.Call("max", b.V("s"), b.F(0.5))),
			),
			b.Ret(b.V("s")),
		)
		args = []float64{256}
	}
	prog.AddFunc(fn)
	return prog, fn, args
}

// microBenchmarks contrasts the engines on each opcode-class kernel,
// splitting minSeconds across the classes.
func microBenchmarks(m *machine.Machine, minSeconds float64, phase func(string, int64, int64)) []microReport {
	classes := []string{"alu_superblock", "memory_bound", "branch_heavy", "call_heavy"}
	out := make([]microReport, 0, len(classes))
	per := minSeconds / float64(len(classes))
	for _, class := range classes {
		prog, fn, args := microKernel(class)
		v, err := opt.Compile(prog, fn, opt.O3(), m)
		if err != nil {
			fatalf("compile micro %s: %v", class, err)
		}
		mem := sim.NewMemory(prog)
		for _, name := range mem.Names() {
			data := mem.Get(name).Data
			for i := range data {
				data[i] = float64(i%17) * 0.5
			}
		}
		runner := sim.NewRunner(m, mem, 1)
		_, st, err := runner.Run(v, args)
		if err != nil {
			fatalf("micro %s: %v", class, err)
		}
		_, fused, ref := engineContrast(runner, v, args, per)
		rep := microReport{
			Class:        class,
			InstrsPerInv: st.Instrs,
			FusedNsOp:    fused.nsOp(),
			RefNsOp:      ref.nsOp(),
		}
		if fused.bestNsOp > 0 {
			rep.Speedup = float64(ref.bestNsOp) / float64(fused.bestNsOp)
		}
		out = append(out, rep)
		phase("micro_"+class, fused.ns+ref.ns, fused.ops+ref.ops)
	}
	return out
}

// warmStartBench measures the persistent store's payoff. Tune leg: one
// full consultant-path tune of b on m against an empty store, flushed,
// then the identical tune against the reopened store — the warm run
// answers every rating from the memo table. Serve leg (separate store
// directory): one peak-serve job run cold with a store, drained, then a
// fresh server booted from the flushed store answering the duplicate spec
// from the restored artifact without simulating.
func warmStartBench(b *bench.Benchmark, m *machine.Machine, phase func(string, int64, int64)) *warmStartReport {
	ws := &warmStartReport{}

	tuneDir, err := os.MkdirTemp("", "peak-bench-store-*")
	if err != nil {
		fatalf("warmstart: %v", err)
	}
	defer os.RemoveAll(tuneDir)
	prof, err := profiling.Run(b, b.Train, m)
	if err != nil {
		fatalf("warmstart: profile: %v", err)
	}
	tune := func(st *store.Store, cache *vcache.Cache) *core.TuneResult {
		t := &core.Tuner{Bench: b, Mach: m, Dataset: b.Train, Cfg: core.DefaultConfig(), Profile: prof,
			Pool: sched.New(0), Cache: cache, Store: st}
		res, err := t.Tune()
		if err != nil {
			fatalf("warmstart: tune: %v", err)
		}
		return res
	}

	cold, err := store.Open(tuneDir)
	if err != nil {
		fatalf("warmstart: %v", err)
	}
	coldCache := vcache.New()
	cold.AttachCache(coldCache)
	t0 := time.Now()
	coldRes := tune(cold, coldCache)
	ws.ColdTuneNs = time.Since(t0).Nanoseconds()
	phase("warmstart_cold_tune", ws.ColdTuneNs, 1)
	if err := cold.Flush(); err != nil {
		fatalf("warmstart: flush: %v", err)
	}

	warm, err := store.Open(tuneDir)
	if err != nil {
		fatalf("warmstart: %v", err)
	}
	warmCache := vcache.New()
	warm.AttachCache(warmCache)
	t0 = time.Now()
	warmRes := tune(warm, warmCache)
	ws.MemoWarmTuneNs = time.Since(t0).Nanoseconds()
	phase("warmstart_memo_tune", ws.MemoWarmTuneNs, 1)
	if warmRes.Best != coldRes.Best {
		fatalf("warmstart: warm tune diverged: %s vs %s", warmRes.Best, coldRes.Best)
	}
	st := warm.Stats()
	ws.MemoHits, ws.MemoMisses = st.MemoHits, st.MemoMisses
	if ws.MemoWarmTuneNs > 0 {
		ws.MemoSpeedup = float64(ws.ColdTuneNs) / float64(ws.MemoWarmTuneNs)
	}

	serveDir, err := os.MkdirTemp("", "peak-bench-serve-*")
	if err != nil {
		fatalf("warmstart: %v", err)
	}
	defer os.RemoveAll(serveDir)
	req := serve.Request{Bench: b.Name, Machine: m.Name}
	coldStore, err := store.Open(serveDir)
	if err != nil {
		fatalf("warmstart: %v", err)
	}
	s1 := serve.New(serve.Options{Workers: 0, Jobs: 1, Store: coldStore})
	s1.Start()
	t0 = time.Now()
	res, code, err := s1.Submit(req)
	if err != nil || code != 202 {
		fatalf("warmstart: serve submit: code %d, %v", code, err)
	}
	for {
		snap, ok := s1.Job(res.ID)
		if !ok {
			fatalf("warmstart: serve job vanished")
		}
		if snap.State == serve.StateDone {
			break
		}
		if snap.State == serve.StateFailed {
			fatalf("warmstart: serve job failed: %s", snap.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ws.ServeColdJobNs = time.Since(t0).Nanoseconds()
	phase("warmstart_serve_cold", ws.ServeColdJobNs, 1)
	s1.Drain()

	t0 = time.Now()
	warmStore, err := store.Open(serveDir)
	if err != nil {
		fatalf("warmstart: %v", err)
	}
	s2 := serve.New(serve.Options{Workers: 0, Jobs: 1, Store: warmStore})
	s2.Start()
	snap, code, err := s2.Submit(req)
	if err != nil || code != 200 || snap.State != serve.StateDone {
		fatalf("warmstart: serve restart did not restore the job: code %d, state %s, %v", code, snap.State, err)
	}
	ws.ServeRestartNs = time.Since(t0).Nanoseconds()
	phase("warmstart_serve_restart", ws.ServeRestartNs, 1)
	stats := s2.Stats()
	if stats.Store != nil {
		ws.ServeRestoredJobs = stats.Store.RestoredJobs
	}
	ws.ServeSimCycles = stats.Pool.Cycles
	s2.Drain()
	return ws
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peak-bench: "+format+"\n", args...)
	os.Exit(1)
}
