// Command peak-chaos soaks the peak-serve resilience layer: it drives a
// real in-process server through a seeded schedule of injected faults,
// deadline expiries, drains, journal tears and restarts, then verifies
// the exactly-once, byte-identical completion contract. Exit status 0
// means every assertion held; 1 means the report lists violations; 2
// means the harness itself failed to run.
//
// Usage:
//
//	peak-chaos [-jobs 50] [-seed 1] [-epochs 4] [-smoke] [-q]
//
// -smoke shrinks the schedule to a sub-30-second check (8 specs, 2
// epochs) for CI; the full soak defaults to 50 specs over 4 epochs.
package main

import (
	"flag"
	"fmt"
	"os"

	"peak/internal/chaos"
)

func main() {
	jobs := flag.Int("jobs", 50, "spec pool size (distinct canonical tuning specs, max 88)")
	seed := flag.Int64("seed", 1, "chaos schedule seed")
	epochs := flag.Int("epochs", 4, "chaos epochs before the cleanup epoch")
	smoke := flag.Bool("smoke", false, "fast CI schedule: 8 specs over 2 epochs")
	quiet := flag.Bool("q", false, "suppress progress lines (the report still prints)")
	flag.Parse()

	cfg := chaos.Config{Jobs: *jobs, Seed: *seed, Epochs: *epochs}
	if *smoke {
		cfg.Jobs, cfg.Epochs = 8, 2
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "peak-chaos:", err)
		os.Exit(2)
	}
	fmt.Print(rep.Format())
	if len(rep.Violations) > 0 {
		os.Exit(1)
	}
}
