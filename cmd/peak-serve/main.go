// Command peak-serve runs the PEAK tuning service: a long-running
// HTTP/JSON daemon that accepts tuning jobs, runs them concurrently on a
// shared scheduler pool with a process-wide compile cache, and serves
// results, per-job traces and reports, health and statistics.
//
// A job's result, report and trace are byte-identical whether it ran
// alone or with any number of concurrent neighbours, shared cache on or
// off — and the report is byte-for-byte what cmd/peak prints for the same
// arguments (the tier-1 smoke check asserts this via -smoke).
//
// On SIGINT/SIGTERM the server drains gracefully: running jobs stop at
// their next tuning-round boundary, queued jobs are set aside, and — with
// -journal — every completed round is checkpointed, so re-POSTing an
// interrupted job's request to a restarted server resumes it
// byte-identically. The drain prints one resume command per interrupted
// job. The journal is crash-safe beyond the graceful path: records are
// CRC-framed, so a SIGKILL mid-write loses at most the torn final record,
// which the restart detects, drops and reports.
//
// The resilience knobs (all off by default) bound how badly a job or a
// failure storm can hurt the service: -deadline caps any job's wall time
// (per-request deadline_ms overrides it), -watchdog cancels jobs that stop
// making round progress, and -breaker-failures arms a circuit breaker that
// sheds new work with 503 after that many consecutive job failures while
// finished results keep serving. Timed-out jobs keep their checkpoints —
// resubmitting resumes them.
//
// Usage:
//
//	peak-serve -addr :8080                      # serve
//	peak-serve -jobs 4 -workers 8 -queue 32     # 4 concurrent jobs
//	peak-serve -journal serve.jsonl             # checkpoint + resume
//	peak-serve -deadline 2m -watchdog 30s       # per-job wall-clock bounds
//	peak-serve -breaker-failures 5              # shed load after 5 straight failures
//	peak-serve -smoke MGRID/sparc2              # one job end to end, report on stdout
//
//	curl -X POST localhost:8080/tune -d '{"bench":"MGRID","machine":"sparc2"}'
//	curl localhost:8080/jobs/<id>
//	curl localhost:8080/jobs/<id>/report
//	curl localhost:8080/jobs/<id>/trace
//	curl localhost:8080/stats
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"peak"
	"peak/internal/serve"
	"peak/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 1, "shared scheduler pool width (0 = GOMAXPROCS); any value gives identical job results")
		jobs     = flag.Int("jobs", 2, "jobs allowed to run concurrently")
		queueCap = flag.Int("queue", 16, "job queue capacity (full queue refuses with 429 + Retry-After)")
		noCache  = flag.Bool("nocache", false, "private per-job compile caches instead of the shared one (results identical either way)")
		journal  = flag.String("journal", "", "checkpoint journal path: jobs checkpoint every round and resume across restarts")
		cacheDir = flag.String("cache-dir", "", "persistent warm-start store directory: compile cache, rating memos and finished jobs survive restarts (results identical either way)")
		smoke    = flag.String("smoke", "", `run one job end to end and print its report ("BENCH/machine", e.g. "MGRID/sparc2"); with -cache-dir, also drain, reboot from the store and assert the re-served artifacts are byte-identical`)

		deadline = flag.Duration("deadline", 0, "default per-job wall-clock deadline (0 = none; a request's deadline_ms overrides it)")
		watchdog = flag.Duration("watchdog", 0, "cancel running jobs that make no round progress for this long (0 = off)")
		brkFails = flag.Int("breaker-failures", 0, "consecutive job failures that trip the circuit breaker (0 = off)")
		brkCool  = flag.Duration("breaker-cooldown", 30*time.Second, "open-breaker cooldown before a probe job is admitted")
		quarStrm = flag.Int("quarantine-storm", 0, "quarantined flags per job that count as a breaker failure (0 = off)")

		readHdrTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris bound)")
		writeTimeout   = flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTimeout    = flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout")
	)
	flag.Parse()

	opts := serve.Options{
		Workers:         *workers,
		Jobs:            *jobs,
		Queue:           *queueCap,
		NoSharedCache:   *noCache,
		JournalPath:     *journal,
		Deadline:        *deadline,
		WatchdogStall:   *watchdog,
		BreakerFailures: *brkFails,
		BreakerCooldown: *brkCool,
		QuarantineStorm: *quarStrm,
	}
	if *journal != "" {
		var j *peak.Journal
		var err error
		if _, statErr := os.Stat(*journal); statErr == nil {
			j, err = peak.OpenJournal(*journal)
		} else {
			j, err = peak.NewJournal(*journal)
		}
		if err != nil {
			fatalf("%v", err)
		}
		// Surface what recovery found: after a SIGKILL the journal may have
		// lost its torn tail record — say so, and say it was repaired.
		if rec := j.Recovery(); rec.Records > 0 || rec.DroppedBytes > 0 {
			fmt.Fprintf(os.Stderr, "peak-serve: %s\n", rec.String())
		}
		opts.Journal = j
		defer j.Close()
	}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		// Like the journal, say what recovery repaired (a SIGKILL mid-flush
		// loses at most the torn tail; corrupt records are dropped).
		if rec := st.Recovery(); rec.TornTail || rec.HeaderInvalid || rec.DroppedBodies > 0 || rec.DroppedAliases > 0 {
			fmt.Fprintf(os.Stderr, "peak-serve: store recovery: %d records kept, %d bytes dropped (torn=%v header_invalid=%v bodies_dropped=%d aliases_dropped=%d)\n",
				rec.Records, rec.DroppedBytes, rec.TornTail, rec.HeaderInvalid, rec.DroppedBodies, rec.DroppedAliases)
		}
		opts.Store = st
	}

	s := serve.New(opts)
	s.Start()

	if *smoke != "" {
		cold, code := runSmoke(s, *smoke)
		if code == 0 && *cacheDir != "" {
			// Drain flushes the store; the warm phase reboots from it.
			s.Drain()
			code = runWarmRestart(opts, *smoke, *cacheDir, cold)
		}
		os.Exit(code)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	// The HTTP timeouts bound connection-level abuse: a client trickling
	// its request headers (slowloris), a stalled response write, or an idle
	// keep-alive hoard can no longer pin goroutines and file descriptors
	// forever. Long-poll clients are unaffected — job polling is GET with
	// small bodies well inside these bounds.
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: *readHdrTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	fmt.Fprintf(os.Stderr, "peak-serve: listening on %s (%d job slot(s), pool width %d, queue %d)\n",
		ln.Addr(), *jobs, *workers, *queueCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "peak-serve: draining (running jobs stop at their next round boundary)...")
		interrupted := s.Drain()
		for _, r := range interrupted {
			fmt.Fprintf(os.Stderr, "peak-serve: job %s %s (%s)\n", r.ID, r.State, r.Spec)
			fmt.Fprintf(os.Stderr, "peak-serve:   resume with: curl -X POST <addr>/tune -d '%s'\n", string(r.Request))
		}
		if *journal != "" && len(interrupted) > 0 {
			fmt.Fprintf(os.Stderr, "peak-serve: checkpoint journal %s synced; restart with -journal %s to resume from the last completed round\n",
				*journal, *journal)
		}
		httpSrv.Close()
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("serve: %v", err)
	}
}

// smokeArtifacts is everything the smoke job served, captured raw so the
// warm-restart phase can assert byte-identity.
type smokeArtifacts struct {
	id                  string
	body, report, trace []byte
}

// fetch GETs url and returns the raw body, failing the process on a
// transport error or unexpected status.
func fetch(base, path string, wantCode int) []byte {
	resp, err := http.Get(base + path)
	if err != nil {
		fatalf("smoke: GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("smoke: GET %s: %v", path, err)
	}
	if resp.StatusCode != wantCode {
		fatalf("smoke: GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	return data
}

// runSmoke drives one job through the real HTTP stack on a loopback
// listener and prints its report to stdout — the tier-1 smoke check diffs
// that against cmd/peak's output for the same benchmark and machine. The
// job's raw served artifacts are returned for the warm-restart phase.
func runSmoke(s *serve.Server, spec string) (smokeArtifacts, int) {
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		fmt.Fprintf(os.Stderr, "peak-serve: -smoke wants BENCH/machine, got %q\n", spec)
		return smokeArtifacts{}, 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	body, _ := json.Marshal(serve.Request{Bench: parts[0], Machine: parts[1]})
	resp, err := http.Post(base+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("smoke: submit: %v", err)
	}
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		fatalf("smoke: decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		fatalf("smoke: submit returned %d: %s", resp.StatusCode, res.Error)
	}

	for {
		resp, err := http.Get(base + "/jobs/" + res.ID)
		if err != nil {
			fatalf("smoke: poll: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			fatalf("smoke: decode: %v", err)
		}
		resp.Body.Close()
		if res.State == serve.StateDone || res.State == serve.StateFailed || res.State == serve.StateInterrupted {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if res.State != serve.StateDone {
		fmt.Fprintf(os.Stderr, "peak-serve: smoke job ended %s: %s\n", res.State, res.Error)
		return smokeArtifacts{}, 1
	}
	arts := smokeArtifacts{
		id:     res.ID,
		body:   fetch(base, "/jobs/"+res.ID, http.StatusOK),
		report: fetch(base, "/jobs/"+res.ID+"/report", http.StatusOK),
		trace:  fetch(base, "/jobs/"+res.ID+"/trace", http.StatusOK),
	}
	if _, err := os.Stdout.Write(arts.report); err != nil {
		fatalf("smoke: report: %v", err)
	}
	return arts, 0
}

// runWarmRestart is the -smoke warm phase: reboot a fresh server in-process
// from the flushed -cache-dir store, resubmit the same request, and assert
// the restored job re-serves the cold run's body, report and trace
// byte-for-byte without simulating (zero pool cycles). The summary goes to
// stderr; stdout stays the cold report only, so the tier-1 smoke diff is
// unchanged.
func runWarmRestart(opts serve.Options, spec, cacheDir string, cold smokeArtifacts) int {
	parts := strings.SplitN(spec, "/", 2)
	st, err := store.Open(cacheDir)
	if err != nil {
		fatalf("warm restart: %v", err)
	}
	opts.Store = st
	opts.Journal = nil // the smoke job finished; nothing to resume
	s := serve.New(opts)
	s.Start()
	defer s.Drain()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	body, _ := json.Marshal(serve.Request{Bench: parts[0], Machine: parts[1]})
	resp, err := http.Post(base+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("warm restart: submit: %v", err)
	}
	var res serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		fatalf("warm restart: decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.State != serve.StateDone {
		fmt.Fprintf(os.Stderr, "peak-serve: warm restart: job not restored (status %d, state %s)\n", resp.StatusCode, res.State)
		return 1
	}
	ok := true
	for _, c := range []struct {
		name string
		path string
		want []byte
	}{
		{"body", "/jobs/" + res.ID, cold.body},
		{"report", "/jobs/" + res.ID + "/report", cold.report},
		{"trace", "/jobs/" + res.ID + "/trace", cold.trace},
	} {
		if got := fetch(base, c.path, http.StatusOK); !bytes.Equal(got, c.want) {
			fmt.Fprintf(os.Stderr, "peak-serve: warm restart: re-served %s differs from the cold run (%d vs %d bytes)\n",
				c.name, len(got), len(c.want))
			ok = false
		}
	}
	stats := s.Stats()
	if stats.Pool.Cycles != 0 {
		fmt.Fprintf(os.Stderr, "peak-serve: warm restart: %d simulator cycles spent re-serving, want 0\n", stats.Pool.Cycles)
		ok = false
	}
	if !ok {
		return 1
	}
	restored := int64(0)
	if stats.Store != nil {
		restored = stats.Store.RestoredJobs
	}
	fmt.Fprintf(os.Stderr, "peak-serve: warm restart from %s: job %s re-served byte-identical (report %d B, trace %d B), %d job(s) restored, 0 simulator cycles\n",
		cacheDir, res.ID, len(cold.report), len(cold.trace), restored)
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peak-serve: "+format+"\n", args...)
	os.Exit(1)
}
