// Command peak-experiments regenerates the paper's Figure 7: performance
// improvement over "-O3" (panels a, b) and tuning time normalized to the
// whole-program WHL baseline (panels c, d), for SWIM, MGRID, ART and EQUAKE
// under every forceable rating method plus the WHL and AVG baselines.
//
// With -noise it instead regenerates the noise-sensitivity report
// (results_noise.txt): rating consistency and winner-picking reliability
// under the baseline, gauss4x, spikes, drift and bursts noise regimes.
//
// Usage:
//
//	peak-experiments                  # both machines (fig 7 a–d)
//	peak-experiments -machine p4      # one machine
//	peak-experiments -workers 8       # sharded; output identical to -workers 1
//	peak-experiments -headline        # the abstract's summary numbers
//	peak-experiments -noise           # rating error vs noise regime
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"peak"
	"peak/internal/experiments"
	"peak/internal/sched"
)

func main() {
	machName := flag.String("machine", "", `machine: "sparc2", "p4", or empty for both`)
	workers := flag.Int("workers", 1, "parallel workers (0 = GOMAXPROCS); any value gives identical output")
	progress := flag.Bool("progress", false, "print live scheduler status and a final utilization summary")
	headline := flag.Bool("headline", false, "also print the paper-abstract summary numbers")
	noiseRep := flag.Bool("noise", false, "regenerate the noise-sensitivity report instead of Figure 7")
	noCache := flag.Bool("nocache", false, "disable the compile cache (A/B check; output is identical either way)")
	cacheStats := flag.Bool("cachestats", false, "print compile-cache statistics to stderr (Figure 7 mode)")
	flag.Parse()

	var machines []*peak.Machine
	switch *machName {
	case "":
		machines = []*peak.Machine{peak.SPARCII(), peak.PentiumIV()}
	default:
		m, ok := peak.MachineByName(*machName)
		if !ok {
			fmt.Fprintf(os.Stderr, "peak-experiments: unknown machine %q\n", *machName)
			os.Exit(1)
		}
		machines = []*peak.Machine{m}
	}

	pool := peak.NewPool(*workers)
	stopProgress := func() {}
	if *progress {
		stopProgress = sched.StartProgress(os.Stderr, pool, time.Second)
	}

	cfg := peak.DefaultConfig()
	cfg.NoCompileCache = *noCache

	if *noiseRep {
		for i, m := range machines {
			report, err := peak.NoiseReport(m, &cfg, pool)
			if err != nil {
				fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
				os.Exit(1)
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(report)
		}
		stopProgress()
		if *progress {
			fmt.Fprintln(os.Stderr, pool.Stats().Summary(pool.Workers()))
		}
		return
	}

	// One compile cache shared across machines: compilations are keyed by
	// machine, so nothing collides, and the -cachestats summary covers the
	// whole run. Output is byte-identical with or without it.
	var cache *peak.VersionCache
	if !*noCache {
		cache = peak.NewVersionCache()
	}
	var all []peak.Fig7Entry
	for _, m := range machines {
		entries, err := experiments.Figure7OnCached(peak.Figure7Benchmarks(), m, &cfg, pool, cache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatFigure7(entries, m.Name))
		fmt.Println()
		all = append(all, entries...)
	}
	if *cacheStats && cache != nil {
		fmt.Fprintln(os.Stderr, cache.Stats().Summary())
	}

	if *headline {
		h := experiments.Summarize(all)
		fmt.Printf("Headline (PEAK-chosen methods, tuned on train):\n")
		fmt.Printf("  performance improvement: up to %.0f%% (%.0f%% on average)\n",
			100*h.MaxImprovement, 100*h.AvgImprovement)
		fmt.Printf("  tuning-time reduction vs WHL: up to %.0f%% (%.0f%% on average)\n",
			100*h.MaxReduction, 100*h.AvgReduction)
	}
	stopProgress()
	if *progress {
		fmt.Fprintln(os.Stderr, pool.Stats().Summary(pool.Workers()))
	}
}
