// Command peak-experiments regenerates the paper's Figure 7: performance
// improvement over "-O3" (panels a, b) and tuning time normalized to the
// whole-program WHL baseline (panels c, d), for SWIM, MGRID, ART and EQUAKE
// under every forceable rating method plus the WHL and AVG baselines.
//
// With -noise it instead regenerates the noise-sensitivity report
// (results_noise.txt): rating consistency and winner-picking reliability
// under the baseline, gauss4x, spikes, drift and bursts noise regimes.
//
// With -faults it regenerates the robustness report (results_faults.txt):
// the Figure-7 tuning protocol re-run under deterministic fault injection
// (compile failures, miscompiles, measurement hangs, job panics), each
// bar's winner compared against its fault-free twin.
//
// Long runs can checkpoint after every tuning round with -checkpoint; a
// killed run is continued bit-for-bit with -resume (same flags otherwise).
// On SIGINT the journal is synced and the resume command printed before
// exiting with status 130. On any error the results computed so far are
// still flushed before the nonzero exit.
//
// Usage:
//
//	peak-experiments                  # both machines (fig 7 a–d)
//	peak-experiments -machine p4      # one machine
//	peak-experiments -workers 8       # sharded; output identical to -workers 1
//	peak-experiments -headline        # the abstract's summary numbers
//	peak-experiments -noise           # rating error vs noise regime
//	peak-experiments -faults          # tuning under injected faults
//	peak-experiments -checkpoint run.jsonl   # journal every round
//	peak-experiments -resume run.jsonl       # continue a killed run
//	peak-experiments -trace fig7.jsonl       # record a trace (analyze: peak-trace)
//	peak-experiments -metrics                # print the metrics table to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"peak"
	"peak/internal/cli"
	"peak/internal/experiments"
	"peak/internal/sched"
	"peak/internal/store"
)

func main() {
	machName := flag.String("machine", "", `machine: "sparc2", "p4", or empty for both`)
	workers := flag.Int("workers", 1, "parallel workers (0 = GOMAXPROCS); any value gives identical output")
	progress := flag.Bool("progress", false, "print live scheduler status and a final utilization summary")
	headline := flag.Bool("headline", false, "also print the paper-abstract summary numbers")
	noiseRep := flag.Bool("noise", false, "regenerate the noise-sensitivity report instead of Figure 7")
	noCache := flag.Bool("nocache", false, "disable the compile cache (A/B check; output is identical either way)")
	cacheStats := flag.Bool("cachestats", false, "print compile-cache statistics to stderr (Figure 7 mode)")
	faultsRep := flag.Bool("faults", false, "regenerate the fault-injection robustness report instead of Figure 7")
	faultRate := flag.Float64("faultrate", 0.05, "uniform fault rate for -faults (miscompiles injected at rate/10)")
	faultSeed := flag.Int64("faultseed", 2023, "fault-injection seed for -faults")
	checkpoint := flag.String("checkpoint", "", "checkpoint journal path: save resumable state after every tuning round")
	resume := flag.String("resume", "", "resume from an existing checkpoint journal (pass the same other flags)")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (analyze with peak-trace)")
	metrics := flag.Bool("metrics", false, "print the metrics table to stderr after the run")
	cacheDir := flag.String("cache-dir", "", "persistent warm-start store for -noise: grid cells memoize across runs (output identical either way)")
	flag.Parse()

	var machines []*peak.Machine
	switch *machName {
	case "":
		machines = []*peak.Machine{peak.SPARCII(), peak.PentiumIV()}
	default:
		m, ok := peak.MachineByName(*machName)
		if !ok {
			fmt.Fprintf(os.Stderr, "peak-experiments: unknown machine %q\n", *machName)
			os.Exit(1)
		}
		machines = []*peak.Machine{m}
	}

	// -resume requires an existing journal; -checkpoint reuses one if the
	// file already holds state (so a killed -checkpoint run can simply be
	// re-invoked) and creates it otherwise.
	journalPath := *checkpoint
	if *resume != "" {
		journalPath = *resume
	}
	var journal *peak.Journal
	if journalPath != "" {
		var err error
		if _, statErr := os.Stat(journalPath); statErr == nil {
			journal, err = peak.OpenJournal(journalPath)
		} else if *resume != "" {
			err = fmt.Errorf("-resume %s: %w", journalPath, statErr)
		} else {
			journal, err = peak.NewJournal(journalPath)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
			os.Exit(1)
		}
	}

	pool := peak.NewPool(*workers)
	stopProgress := func() {}
	if *progress {
		stopProgress = sched.StartProgress(os.Stderr, pool, time.Second)
	}
	obs := cli.NewObserver(*tracePath, *metrics, os.Stderr)
	// A SIGINT mid-run flushes the partial trace and — when a journal is
	// attached, the checkpoint layer's reason to exist — syncs it and
	// tells the user how to continue.
	obs.FlushOnInterrupt(os.Stderr, "peak-experiments", func() {
		if journal == nil {
			return
		}
		journal.Sync()
		fmt.Fprintf(os.Stderr, "\npeak-experiments: interrupted; checkpoint journal %s synced\n", journalPath)
		fmt.Fprintf(os.Stderr, "peak-experiments: continue with: peak-experiments -resume %s (plus the same flags)\n", journalPath)
	})
	finish := func(code int) {
		stopProgress()
		if *progress {
			fmt.Fprintln(os.Stderr, pool.Stats().Summary(pool.Workers()))
		}
		pool.Stats().FillMetrics(obs.Mx, pool.Workers())
		if journal != nil {
			journal.FillMetrics(obs.Mx)
			journal.Sync()
			journal.Close()
			if code != 0 {
				fmt.Fprintf(os.Stderr, "peak-experiments: continue with: peak-experiments -resume %s (plus the same flags)\n", journalPath)
			}
		}
		// A partial trace of a failed run is still a valid trace.
		if err := obs.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "peak-experiments: trace: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	cfg := peak.DefaultConfig()
	cfg.NoCompileCache = *noCache

	if *noiseRep {
		// The warm-start store memoizes grid cells across runs; the report
		// bytes are identical with the store absent, cold or warm.
		var st *store.Store
		if *cacheDir != "" {
			var err error
			if st, err = store.Open(*cacheDir); err != nil {
				fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
				finish(1)
			}
		}
		for i, m := range machines {
			report, err := experiments.NoiseReportStored(m, &cfg, pool, obs.Buf, obs.Mx, st)
			if err != nil {
				fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
				finish(1)
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(report)
		}
		if st != nil {
			if err := st.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "peak-experiments: store flush: %v\n", err)
				finish(1)
			}
			ss := st.Stats()
			fmt.Fprintf(os.Stderr, "peak-experiments: store: %d cell memo hit(s), %d new record(s) flushed\n",
				ss.MemoHits, ss.Pending)
		}
		finish(0)
	}

	if *faultsRep {
		plan := peak.UniformFaults(*faultRate, *faultSeed)
		for i, m := range machines {
			bars, err := peak.FaultReportBarsTraced(peak.Figure7Benchmarks(), m, &cfg, plan, pool, journal, obs.Buf, obs.Mx)
			if i > 0 {
				fmt.Println()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
				if len(bars) > 0 {
					fmt.Fprintf(os.Stderr, "peak-experiments: flushing %d completed bar(s)\n", len(bars))
					fmt.Print(experiments.FormatFaultReport(bars, m.Name, plan))
				}
				finish(1)
			}
			fmt.Print(experiments.FormatFaultReport(bars, m.Name, plan))
		}
		finish(0)
	}

	// One compile cache shared across machines: compilations are keyed by
	// machine, so nothing collides, and the -cachestats summary covers the
	// whole run. Output is byte-identical with or without it.
	var cache *peak.VersionCache
	if !*noCache {
		cache = peak.NewVersionCache()
	}
	var all []peak.Fig7Entry
	for _, m := range machines {
		entries, err := experiments.Figure7Traced(peak.Figure7Benchmarks(), m, &cfg, pool, cache, journal, obs.Buf, obs.Mx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peak-experiments: %v\n", err)
			if len(entries) > 0 {
				fmt.Fprintf(os.Stderr, "peak-experiments: flushing %d completed entr(ies)\n", len(entries))
				fmt.Print(experiments.FormatFigure7(entries, m.Name))
			}
			finish(1)
		}
		fmt.Print(experiments.FormatFigure7(entries, m.Name))
		fmt.Println()
		all = append(all, entries...)
	}
	if *cacheStats && cache != nil {
		fmt.Fprintln(os.Stderr, cache.Stats().Summary())
	}
	if cache != nil {
		cache.Stats().FillMetrics(obs.Mx)
	}

	if *headline {
		h := experiments.Summarize(all)
		fmt.Printf("Headline (PEAK-chosen methods, tuned on train):\n")
		fmt.Printf("  performance improvement: up to %.0f%% (%.0f%% on average)\n",
			100*h.MaxImprovement, 100*h.AvgImprovement)
		fmt.Printf("  tuning-time reduction vs WHL: up to %.0f%% (%.0f%% on average)\n",
			100*h.MaxReduction, 100*h.AvgReduction)
	}
	finish(0)
}
